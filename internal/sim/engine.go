// Package sim provides a deterministic discrete-event simulation kernel.
//
// All Aegaeon components are written against a virtual clock owned by an
// Engine. Events are executed in strictly non-decreasing time order; ties are
// broken by scheduling order, which makes every simulation run bit-for-bit
// reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured from the start of the simulation.
type Time = time.Duration

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once fired or cancelled
	cancel bool
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executor with a virtual clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	pq      eventHeap
	seq     uint64
	rng     *rand.Rand
	running bool
	fired   uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// NextEventTime returns the virtual time of the earliest scheduled event.
// A cancelled event may still be reported; it is discarded when reached.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.RunUntil(maxTime)
}

const maxTime = Time(1<<63 - 1)

// RunUntil executes events with timestamps <= horizon and advances the clock
// to horizon (or to the last event time if the queue empties first; the clock
// never moves past horizon).
func (e *Engine) RunUntil(horizon Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.pq)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if horizon != maxTime && horizon > e.now {
		e.now = horizon
	}
}

// Step fires exactly one pending (non-cancelled) event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		next := heap.Pop(&e.pq).(*Event)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
