package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDriverConcurrentInjection hammers the injection API from many
// goroutines while the loop runs, verifying (under -race) that external
// concurrency never touches engine state off the loop goroutine and that
// every injected function executes exactly once.
func TestDriverConcurrentInjection(t *testing.T) {
	eng := NewEngine(1)
	d := NewDriver(eng, 1e6)
	d.Start()

	const goroutines = 16
	const perG = 50
	var fired atomic.Int64
	var scheduled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := d.Post(func() {
					// Runs on the loop goroutine: schedule follow-on events
					// against the engine, which only the loop may touch.
					eng.After(time.Duration(g+i)*time.Microsecond, func() {
						fired.Add(1)
					})
					scheduled.Add(1)
				})
				if err != nil {
					t.Errorf("Post: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// A synchronous Call fences all prior posts; accelerating then draining
	// through Stop fences the scheduled events.
	if err := d.Call(func() {}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	d.Accelerate()
	d.Stop()
	if got := scheduled.Load(); got != goroutines*perG {
		t.Fatalf("scheduled %d injected functions, want %d", got, goroutines*perG)
	}
	if got := fired.Load(); got != goroutines*perG {
		t.Fatalf("fired %d events, want %d", got, goroutines*perG)
	}
}

// TestDriverPacing verifies virtual time replays against the wall clock at
// the configured speedup.
func TestDriverPacing(t *testing.T) {
	eng := NewEngine(1)
	done := make(chan time.Time, 1)
	// 500ms of virtual time at 100x should take ~5ms of wall time.
	eng.At(500*time.Millisecond, func() { done <- time.Now() })
	d := NewDriver(eng, 100)
	start := time.Now()
	d.Start()
	select {
	case at := <-done:
		elapsed := at.Sub(start)
		if elapsed < 4*time.Millisecond {
			t.Fatalf("event fired after %v wall time, want >= ~5ms (pacing ignored?)", elapsed)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("event fired after %v wall time, want ~5ms", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("paced event never fired")
	}
	d.Stop()
}

// TestDriverInjectionAdvancesClock checks that an injected arrival lands at
// the wall-mapped virtual instant, not at the last event's timestamp.
func TestDriverInjectionAdvancesClock(t *testing.T) {
	eng := NewEngine(1)
	d := NewDriver(eng, 1000)
	d.Start()
	time.Sleep(20 * time.Millisecond) // ~20s of virtual time at 1000x
	var at Time
	if err := d.Call(func() { at = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if at < 10*time.Second {
		t.Fatalf("virtual clock %v after 20ms wall at 1000x, want >= 10s", at)
	}
	d.Stop()
}

// TestDriverStopRejectsPost verifies the post/stop race is closed: once
// Stop returns, Post and Call fail rather than silently dropping work.
func TestDriverStopRejectsPost(t *testing.T) {
	eng := NewEngine(1)
	d := NewDriver(eng, 1)
	d.Start()
	d.Stop()
	if err := d.Post(func() {}); err != ErrDriverStopped {
		t.Fatalf("Post after Stop = %v, want ErrDriverStopped", err)
	}
	if err := d.Call(func() {}); err != ErrDriverStopped {
		t.Fatalf("Call after Stop = %v, want ErrDriverStopped", err)
	}
}

// TestDriverStopDrainsPending verifies functions posted before Stop always
// run, along with every event they schedule.
func TestDriverStopDrainsPending(t *testing.T) {
	eng := NewEngine(1)
	d := NewDriver(eng, 1e-9) // effectively frozen pacing: only drain runs events
	d.Start()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		if err := d.Post(func() {
			eng.After(time.Hour, func() { ran.Add(1) })
		}); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	d.Stop()
	if got := ran.Load(); got != 100 {
		t.Fatalf("%d far-future events ran after Stop, want 100", got)
	}
}
