package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDriverStopped is returned by Post and Call after the driver has been
// stopped: the event loop will never execute the injected function.
var ErrDriverStopped = errors.New("sim: driver stopped")

// Driver replays an Engine's virtual time against the wall clock, turning
// the single-threaded deterministic core into a live server. It owns the
// engine exclusively: all engine and simulation-component state must be
// touched only from functions injected via Post or Call, which the driver
// executes on its loop goroutine. This is the concurrency boundary of the
// live serving path — HTTP goroutines inject closures, the loop serializes
// them against the event heap, and nothing inside the simulation ever needs
// a lock.
//
// Pacing maps virtual time v to wall time start + (v-start_v)/speedup: a
// speedup of 1 replays in real time, larger values run proportionally
// faster. Accelerate abandons pacing and burns through remaining events at
// full speed, which is how graceful drain finishes in-flight decodes
// quickly regardless of the configured speedup.
type Driver struct {
	eng     *Engine
	speedup float64

	mu      sync.Mutex
	pending []func()
	stopped bool

	accel atomic.Bool

	wake chan struct{}
	done chan struct{}

	startWall time.Time
	startVirt Time

	stopOnce sync.Once
}

// NewDriver wraps eng for real-time replay at the given speedup (virtual
// seconds per wall second; values <= 0 default to 1). The driver does not
// run until Start is called.
func NewDriver(eng *Engine, speedup float64) *Driver {
	if speedup <= 0 {
		speedup = 1
	}
	return &Driver{
		eng:     eng,
		speedup: speedup,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// Start anchors virtual time to the current wall clock and launches the
// event loop goroutine. Start must be called at most once.
func (d *Driver) Start() {
	d.startWall = time.Now()
	d.startVirt = d.eng.Now()
	go d.loop()
}

// Post schedules fn to run on the loop goroutine at the current virtual
// time. It is safe for concurrent use; ordering between concurrent posters
// is the order in which they win the queue lock. fn typically schedules
// further events via the engine it closes over.
func (d *Driver) Post(fn func()) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return ErrDriverStopped
	}
	d.pending = append(d.pending, fn)
	d.mu.Unlock()
	d.kick()
	return nil
}

// Call runs fn on the loop goroutine and waits for it to return — the safe
// way for an HTTP goroutine to read simulation state (e.g. a metrics
// snapshot).
func (d *Driver) Call(fn func()) error {
	ran := make(chan struct{})
	if err := d.Post(func() {
		fn()
		close(ran)
	}); err != nil {
		return err
	}
	<-ran
	return nil
}

// Accelerate switches the driver to un-paced execution: remaining and
// future events run as fast as the host allows. Used during graceful drain.
func (d *Driver) Accelerate() {
	d.accel.Store(true)
	d.kick()
}

// Stop shuts the loop down: functions already posted still run, then the
// remaining event queue is executed to completion un-paced, and the loop
// exits. Stop blocks until the loop goroutine has finished and is
// idempotent. Post and Call fail with ErrDriverStopped afterwards.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() {
		d.mu.Lock()
		d.stopped = true
		d.mu.Unlock()
		d.kick()
	})
	<-d.done
}

// Done is closed once the loop goroutine has exited.
func (d *Driver) Done() <-chan struct{} { return d.done }

// kick wakes the loop without blocking.
func (d *Driver) kick() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

func (d *Driver) takePending() []func() {
	d.mu.Lock()
	fns := d.pending
	d.pending = nil
	d.mu.Unlock()
	return fns
}

// virtualNow maps the current wall clock onto virtual time.
func (d *Driver) virtualNow() Time {
	return d.startVirt + Time(float64(time.Since(d.startWall))*d.speedup)
}

// wallFor maps a virtual timestamp back onto the wall clock.
func (d *Driver) wallFor(v Time) time.Time {
	return d.startWall.Add(time.Duration(float64(v-d.startVirt) / d.speedup))
}

// advance fires every event due by the present moment. Under pacing the
// horizon is the wall-mapped virtual now (the clock also advances through
// event-free stretches, so injected arrivals land at the right virtual
// instant); accelerated, the whole queue drains.
func (d *Driver) advance() {
	if d.accel.Load() {
		d.eng.Run()
		return
	}
	if v := d.virtualNow(); v > d.eng.Now() {
		d.eng.RunUntil(v)
	}
}

func (d *Driver) loop() {
	defer close(d.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		for _, fn := range d.takePending() {
			d.advance()
			fn()
		}
		d.advance()

		d.mu.Lock()
		stopped := d.stopped
		more := len(d.pending) > 0
		d.mu.Unlock()
		if more {
			continue
		}
		if stopped {
			// Final drain: posted functions may schedule events and events
			// may (indirectly) trigger posts, so alternate until both are
			// empty.
			for {
				d.eng.Run()
				fns := d.takePending()
				if len(fns) == 0 {
					return
				}
				for _, fn := range fns {
					fn()
				}
			}
		}

		// Sleep until the next event is due on the wall clock, or until a
		// post/stop/accelerate kick arrives.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if next, ok := d.eng.NextEventTime(); ok && !d.accel.Load() {
			wait := time.Until(d.wallFor(next))
			if wait <= 0 {
				continue
			}
			timer.Reset(wait)
			select {
			case <-d.wake:
			case <-timer.C:
			}
			continue
		}
		<-d.wake
	}
}
