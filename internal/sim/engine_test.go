package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at2 Time
	e.After(time.Second, func() {
		e.After(time.Second, func() { at2 = e.Now() })
	})
	e.Run()
	if at2 != 2*time.Second {
		t.Fatalf("nested After fired at %v, want 2s", at2)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.At(1*time.Second, func() { fired = append(fired, 1) })
	e.At(3*time.Second, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("RunUntil(2s) fired %v", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock after RunUntil = %v, want 2s", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(time.Second, func() { n++ })
	e.At(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEnginePanicsOnPast(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var samples []int64
		var tick func()
		tick = func() {
			samples = append(samples, e.rng.Int63n(1000))
			if len(samples) < 50 {
				e.After(time.Duration(e.rng.Int63n(int64(time.Second))), tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in sorted order and the count
// of fired events equals the count scheduled.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint32) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.After(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineProcessedPending(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {})
	ev := e.After(2*time.Second, func() {})
	ev.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1 (cancelled event must not count)", e.Processed())
	}
}
