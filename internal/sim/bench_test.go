package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}

func BenchmarkEventChurn(b *testing.B) {
	// A deep timer wheel: 1k outstanding events at all times.
	e := NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Millisecond, tick)
		}
	}
	for i := 0; i < 1000; i++ {
		e.After(time.Duration(i)*time.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
