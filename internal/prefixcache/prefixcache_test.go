package prefixcache

import (
	"math/rand"
	"sync"
	"testing"

	"aegaeon/internal/kvcache"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/workload"
)

const testBlkTok = 16

// testShape is a tiny KV geometry: 128 B/token, 2 KiB per 16-token block.
var testShape = model.KVShape{Layers: 2, KVHeads: 2, HeadDim: 8, BytesPerElem: 2}

var testBlockBytes = testShape.BytesPerToken() * testBlkTok

func newHost() *kvcache.Cache {
	return kvcache.NewCache("cpu", 1<<20, 1<<14, testBlkTok)
}

func seg(seed uint64, n int) workload.PromptSeg { return workload.PromptSeg{Seed: seed, Len: n} }

// TestChunkHashesGolden pins the chained chunk-hash values so index contents
// stay stable across refactors, and exercises the partial-match geometry:
// empty prompts, exact matches, matches ending exactly at a block boundary,
// and divergent suffixes.
func TestChunkHashesGolden(t *testing.T) {
	// A is one 32-token stream; B re-generates A's first 16 tokens from the
	// same seed, then diverges. With block 4: 8 chunks each, first 4 shared.
	segA := []workload.PromptSeg{seg(0x1111, 32)}
	segB := []workload.PromptSeg{seg(0x1111, 16), seg(0x2222, 16)}
	goldenA := []uint64{
		0x3c29c5ce86fb530f, 0xabd892df2b690057, 0x7b137fc647f3c5ce, 0x97a3ed7c8bc6091a,
		0x8164cb6d0a35afa8, 0x17b5ffc404a344f3, 0xd908abf506f95a77, 0x236bf9e6d7ab90d4,
	}
	goldenB := []uint64{
		0x3c29c5ce86fb530f, 0xabd892df2b690057, 0x7b137fc647f3c5ce, 0x97a3ed7c8bc6091a,
		0xa3b58085e3557547, 0x37c631d7672b0e44, 0x6f7ea885d7458982, 0x1a749434cebbe35a,
	}

	// Empty inputs produce no chunks.
	if got := ChunkHashes(nil, 4, 4); len(got) != 0 {
		t.Errorf("empty segs: %d chunks", len(got))
	}
	if got := ChunkHashes([]workload.PromptSeg{seg(1, 3)}, 4, 4); len(got) != 0 {
		t.Errorf("sub-block prompt: %d chunks", len(got))
	}
	if got := ChunkHashes(segA, 0, 4); len(got) != 0 {
		t.Errorf("nblocks=0: %d chunks", len(got))
	}

	// Exact: recomputation is bit-stable and equals the golden values.
	gotA := ChunkHashes(segA, 8, 4)
	if len(gotA) != len(goldenA) {
		t.Fatalf("A: %d chunks, want %d", len(gotA), len(goldenA))
	}
	for i := range goldenA {
		if gotA[i] != goldenA[i] {
			t.Errorf("A chunk %d = %#x, want %#x", i, gotA[i], goldenA[i])
		}
	}

	// Block boundary: B matches A for exactly the 4 chunks covering the
	// shared 16 tokens, then every later chunk differs (the chain folds the
	// divergence into all following hashes).
	gotB := ChunkHashes(segB, 8, 4)
	for i := range goldenB {
		if gotB[i] != goldenB[i] {
			t.Errorf("B chunk %d = %#x, want %#x", i, gotB[i], goldenB[i])
		}
	}
	for i := 0; i < 4; i++ {
		if gotA[i] != gotB[i] {
			t.Errorf("shared prefix chunk %d differs", i)
		}
	}
	for i := 4; i < 8; i++ {
		if gotA[i] == gotB[i] {
			t.Errorf("divergent-suffix chunk %d collides", i)
		}
	}

	// nblocks caps at the available whole blocks.
	if got := ChunkHashes(segA, 100, 4); len(got) != 8 {
		t.Errorf("over-asked: %d chunks, want 8", len(got))
	}
	// A fully different stream shares nothing.
	other := ChunkHashes([]workload.PromptSeg{seg(0x9999, 32)}, 8, 4)
	if other[0] == gotA[0] {
		t.Error("independent streams share chunk 0")
	}
}

func TestAcquireMissInsertHit(t *testing.T) {
	c := New(Config{}, newHost())
	segs := []workload.PromptSeg{seg(7, 64)}

	if h := c.Acquire("p0", "m", testShape, segs, 64, 0); h != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert("m", testShape, segs, 64, 1)

	// 64-token prompt: the match is capped one token short, so 3 of the 4
	// cached blocks match.
	h := c.Acquire("p0", "m", testShape, segs, 64, 2)
	if h == nil {
		t.Fatal("miss after insert")
	}
	if h.MatchedTokens != 48 || h.DeviceTokens != 0 {
		t.Fatalf("matched %d (device %d), want 48 (0)", h.MatchedTokens, h.DeviceTokens)
	}
	if h.HostBytes != 3*testBlockBytes || h.DeviceBytes != 0 {
		t.Fatalf("host bytes %d, want %d", h.HostBytes, 3*testBlockBytes)
	}
	if got := c.PinnedEntries(); got != 3 {
		t.Fatalf("pinned = %d during hit, want 3", got)
	}
	h.Release(3)
	h.Release(3) // idempotent
	if got := c.PinnedEntries(); got != 0 {
		t.Fatalf("pinned = %d after release, want 0", got)
	}

	// A longer prompt extending the same stream matches all 4 blocks.
	long := []workload.PromptSeg{seg(7, 96)}
	h2 := c.Acquire("p0", "m", testShape, long, 96, 4)
	if h2 == nil || h2.MatchedTokens != 64 {
		t.Fatalf("extended prompt matched %v, want 64", h2)
	}
	h2.Release(5)

	st := c.Stats()
	if st.Lookups != 3 || st.Hits != 2 || st.TokensSaved != 48+64 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HostEntries != 4 || st.HostBytes != 4*testBlockBytes {
		t.Fatalf("residency = %d entries / %d bytes", st.HostEntries, st.HostBytes)
	}
	if ms := st.PerModel["m"]; ms.Hits != 2 || ms.TokensSaved != 112 {
		t.Fatalf("per-model = %+v", ms)
	}
	if bad := c.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("consistency: %v", bad)
	}
}

// TestPartialMatchDivergentSuffix: a prompt sharing only the first block of a
// cached chain matches exactly that block.
func TestPartialMatchDivergentSuffix(t *testing.T) {
	c := New(Config{}, newHost())
	c.Insert("m", testShape, []workload.PromptSeg{seg(1, 32)}, 32, 0)

	div := []workload.PromptSeg{seg(1, 16), seg(2, 16)}
	h := c.Acquire("p0", "m", testShape, div, 32, 1)
	if h == nil || h.MatchedTokens != 16 {
		t.Fatalf("divergent suffix matched %v, want 16", h)
	}
	h.Release(2)

	// Different model namespaces never cross-match.
	if h := c.Acquire("p0", "other", testShape, []workload.PromptSeg{seg(1, 32)}, 32, 3); h != nil {
		t.Fatal("cross-model hit")
	}
}

// TestEvictionNeverReclaimsPinned is the eviction-under-pin property test:
// under sustained insert pressure against a tiny budget, chains pinned by
// in-flight hits survive intact, byte accounting matches, and the budget
// holds. Deterministically seeded.
func TestEvictionNeverReclaimsPinned(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyFreq} {
		budget := 6 * testBlockBytes
		c := New(Config{HostBytes: budget, Policy: pol}, newHost())
		rng := rand.New(rand.NewSource(11))

		type pinned struct {
			h    *Hit
			segs []workload.PromptSeg
		}
		var pins []pinned
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			now++
			switch {
			case len(pins) < 2 && rng.Intn(3) == 0:
				segs := []workload.PromptSeg{seg(rng.Uint64(), 48)}
				c.Insert("m", testShape, segs, 48, now)
				now++
				if h := c.Acquire("p0", "m", testShape, segs, 49, now); h != nil {
					pins = append(pins, pinned{h, segs})
				}
			case len(pins) > 0 && rng.Intn(4) == 0:
				pins[0].h.Release(now)
				pins = pins[1:]
			default:
				n := (1 + rng.Intn(3)) * testBlkTok
				c.Insert("m", testShape, []workload.PromptSeg{seg(rng.Uint64(), n)}, n, now)
			}

			// Invariants after every step.
			if got := c.HostResidentBytes(); got > budget {
				t.Fatalf("[%v] step %d: resident %d exceeds budget %d", pol, i, got, budget)
			}
			for _, p := range pins {
				if m, _ := c.MatchTokensOn("p0", "m", p.segs, 49); m != 48 {
					t.Fatalf("[%v] step %d: pinned chain shrank to %d tokens", pol, i, m)
				}
			}
			if i%25 == 0 {
				if bad := c.CheckConsistency(); len(bad) != 0 {
					t.Fatalf("[%v] step %d: %v", pol, i, bad)
				}
			}
		}
		for _, p := range pins {
			p.h.Release(now)
		}
		if got := c.PinnedEntries(); got != 0 {
			t.Fatalf("[%v] pinned = %d after drain", pol, got)
		}
		if bad := c.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("[%v] final consistency: %v", pol, bad)
		}
		if st := c.Stats(); st.HostEvictions == 0 {
			t.Fatalf("[%v] no evictions — pressure test exerted no pressure", pol)
		}
	}
}

// TestInsertStopsWhenAllPinned: insertion degrades to a shorter cached chain
// rather than evicting pinned entries.
func TestInsertStopsWhenAllPinned(t *testing.T) {
	c := New(Config{HostBytes: testBlockBytes}, newHost())
	a := []workload.PromptSeg{seg(1, 16)}
	c.Insert("m", testShape, a, 16, 0)
	h := c.Acquire("p0", "m", testShape, a, 17, 1)
	if h == nil {
		t.Fatal("miss on cached block")
	}
	b := []workload.PromptSeg{seg(2, 16)}
	c.Insert("m", testShape, b, 16, 2)
	if m, _ := c.MatchTokensOn("p0", "m", b, 17); m != 0 {
		t.Fatalf("insert displaced a pinned entry (matched %d)", m)
	}
	if m, _ := c.MatchTokensOn("p0", "m", a, 17); m != 16 {
		t.Fatalf("pinned entry gone (matched %d)", m)
	}
	h.Release(3)
	// Unpinned now: the next insert may evict it.
	c.Insert("m", testShape, b, 16, 4)
	if m, _ := c.MatchTokensOn("p0", "m", b, 17); m != 16 {
		t.Fatalf("insert still blocked after release (matched %d)", m)
	}
}

func TestFreqPolicyKeepsHotEntry(t *testing.T) {
	mk := func(pol Policy) *Cache {
		c := New(Config{HostBytes: 2 * testBlockBytes, Policy: pol, PromoteAfter: 100}, newHost())
		hot := []workload.PromptSeg{seg(1, 16)}
		c.Insert("m", testShape, hot, 16, 0)
		for i := 0; i < 3; i++ {
			if h := c.Acquire("p0", "m", testShape, hot, 17, sim.Time(1+i)); h != nil {
				h.Release(sim.Time(1 + i))
			}
		}
		c.Insert("m", testShape, []workload.PromptSeg{seg(2, 16)}, 16, 10) // colder but newer
		c.Insert("m", testShape, []workload.PromptSeg{seg(3, 16)}, 16, 11) // forces one eviction
		return c
	}

	c := mk(PolicyFreq)
	if m, _ := c.MatchTokensOn("p0", "m", []workload.PromptSeg{seg(1, 16)}, 17); m != 16 {
		t.Error("freq policy evicted the frequently reused entry")
	}
	if m, _ := c.MatchTokensOn("p0", "m", []workload.PromptSeg{seg(2, 16)}, 17); m != 0 {
		t.Error("freq policy kept the cold entry over the hot one")
	}

	// LRU sees only recency: the hot entry's last use (t=3) predates the
	// cold insert (t=10), so pure LRU flushes it — exactly the failure mode
	// PolicyFreq exists to avoid.
	c = mk(PolicyLRU)
	if m, _ := c.MatchTokensOn("p0", "m", []workload.PromptSeg{seg(1, 16)}, 17); m != 0 {
		t.Error("lru kept the older entry despite newer residents")
	}
	if m, _ := c.MatchTokensOn("p0", "m", []workload.PromptSeg{seg(2, 16)}, 17); m != 16 {
		t.Error("lru evicted the most recently inserted entry")
	}
}

func TestPromotionDeviceTierAndCrash(t *testing.T) {
	host := newHost()
	dev := kvcache.NewCache("gpu0", 1<<20, 1<<14, testBlkTok)
	c := New(Config{DeviceBytes: 2 * testBlockBytes}, host)
	c.AttachDevice("p0", dev)

	segs := []workload.PromptSeg{seg(5, 48)}
	c.Insert("m", testShape, segs, 48, 0)

	// First reuse: hits reach PromoteAfter (1), so Release promotes
	// root-first until the 2-block device budget is exhausted.
	h := c.Acquire("p0", "m", testShape, segs, 49, 1)
	if h == nil || h.DeviceTokens != 0 {
		t.Fatalf("first hit = %+v", h)
	}
	h.Release(2)
	if got := c.DeviceResidentBytes("p0"); got != 2*testBlockBytes {
		t.Fatalf("device resident %d, want %d", got, 2*testBlockBytes)
	}
	if used := dev.Pool().UsedBytes(); used != 2*testBlockBytes {
		t.Fatalf("device pool used %d, want %d", used, 2*testBlockBytes)
	}

	// Second reuse sees the contiguous device prefix.
	h = c.Acquire("p0", "m", testShape, segs, 49, 3)
	if h == nil || h.DeviceTokens != 32 || h.DeviceBytes != 2*testBlockBytes {
		t.Fatalf("second hit = %+v", h)
	}
	if h.HostBytes != testBlockBytes {
		t.Fatalf("host remainder = %d", h.HostBytes)
	}
	h.Release(4)

	// Other instances are blind to p0's copies.
	if _, onDev := c.MatchTokensOn("p1", "m", segs, 49); onDev != 0 {
		t.Error("device residency leaked across instances")
	}

	// Pressure valve: leaf-only device eviction frees the deepest copy and
	// returns the blocks to the instance pool.
	if freed := c.EvictDeviceBytes("p0", testBlockBytes); freed != testBlockBytes {
		t.Fatalf("EvictDeviceBytes freed %d", freed)
	}
	if used := dev.Pool().UsedBytes(); used != testBlockBytes {
		t.Fatalf("device pool used %d after valve, want %d", used, testBlockBytes)
	}

	// Crash: copies are forgotten without touching the dead pool.
	before := dev.Pool().UsedBytes()
	c.DropInstance("p0")
	if got := c.DeviceResidentBytes("p0"); got != 0 {
		t.Fatalf("device resident %d after crash", got)
	}
	if dev.Pool().UsedBytes() != before {
		t.Error("DropInstance freed blocks into a dead pool")
	}
	st := c.Stats()
	if st.DeviceDrops == 0 || st.DeviceEvictions != 1 || st.Promotions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if bad := c.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("consistency: %v", bad)
	}
}

// TestConcurrentLookupInsertEvict hammers the cache from four goroutine
// families — acquire/release on shared sessions, inserts of fresh prompts,
// the device pressure valve, and stats/consistency readers — and must pass
// under -race. Refcounts must return to zero and accounting must balance.
func TestConcurrentLookupInsertEvict(t *testing.T) {
	host := newHost()
	dev := kvcache.NewCache("gpu0", 1<<20, 1<<14, testBlkTok)
	c := New(Config{HostBytes: 32 * testBlockBytes, DeviceBytes: 8 * testBlockBytes}, host)
	c.AttachDevice("p0", dev)

	shared := []workload.PromptSeg{seg(0xABCD, 64)}
	c.Insert("m", testShape, shared, 64, 0)

	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				now := sim.Time(w*iters + i)
				if h := c.Acquire("p0", "m", testShape, shared, 65, now); h != nil {
					h.Release(now)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < iters; i++ {
			n := (1 + rng.Intn(4)) * testBlkTok
			c.Insert("m", testShape, []workload.PromptSeg{seg(rng.Uint64(), n)}, n, sim.Time(i))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			c.EvictDeviceBytes("p0", testBlockBytes)
			_, _ = c.MatchTokensOn("p0", "m", shared, 65)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/8; i++ {
			_ = c.Stats()
			if bad := c.CheckConsistency(); len(bad) != 0 {
				t.Errorf("mid-run consistency: %v", bad)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.PinnedEntries(); got != 0 {
		t.Fatalf("pinned = %d after drain", got)
	}
	if bad := c.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("final consistency: %v", bad)
	}
	st := c.Stats()
	if st.HostBytes != c.HostResidentBytes() {
		t.Fatal("stats/resident divergence")
	}
	if host.Pool().UsedBytes() != st.HostBytes {
		t.Fatalf("host pool used %d != cache accounting %d", host.Pool().UsedBytes(), st.HostBytes)
	}
	if dev.Pool().UsedBytes() != st.DeviceBytes {
		t.Fatalf("device pool used %d != cache accounting %d", dev.Pool().UsedBytes(), st.DeviceBytes)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": PolicyLRU, "lru": PolicyLRU, "freq": PolicyFreq} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}
