// Package prefixcache implements a global prefix cache over the slab-
// allocated KV tiers of internal/kvcache, in the spirit of Mooncake's
// KV-centric architecture: prompt prefixes that repeat across requests
// (multi-turn chat, agentic loops, shared system prompts) are retained after
// the owning request completes, indexed by chained block-aligned chunk
// hashes, and reused by later requests instead of being recomputed.
//
// The host (CPU DRAM) tier is the tier of record: every cached block holds a
// slab block in the shared CPU KV pool. Prefill instances additionally hold
// per-instance device copies of hot entries (promotion on reuse), which turn
// a PCIe copy into a cheaper on-device copy. Entries are reference-counted:
// a chain pinned by an in-flight prefill is never reclaimed, no matter the
// eviction pressure. Eviction is leaf-only (an entry with cached descendants
// is never removed, keeping every indexed chain contiguous from the prompt
// start) and deterministic: victims are chosen by a total order over
// (policy key, model, hash), never by map iteration order, so simulations
// replay identically.
package prefixcache

import (
	"fmt"
	"sort"
	"sync"

	"aegaeon/internal/decision"
	"aegaeon/internal/kvcache"
	"aegaeon/internal/memory"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/workload"
)

// Policy selects the eviction victim ordering.
type Policy int

const (
	// PolicyLRU evicts the least-recently-used unpinned leaf.
	PolicyLRU Policy = iota
	// PolicyFreq evicts the leaf with the fewest lifetime hits, breaking
	// ties by recency — it keeps a frequently reused system prompt resident
	// through a burst of one-off conversations that would flush pure LRU.
	PolicyFreq
)

func (p Policy) String() string {
	if p == PolicyFreq {
		return "freq"
	}
	return "lru"
}

// ParsePolicy parses "lru", "freq", or "" (lru).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return PolicyLRU, nil
	case "freq":
		return PolicyFreq, nil
	}
	return PolicyLRU, fmt.Errorf("prefixcache: unknown policy %q", s)
}

// Config parameterizes the cache.
type Config struct {
	// HostBytes caps host-tier residency. Zero defaults to a quarter of the
	// host KV pool: the pool is shared with sequence swap-out, and the cache
	// must not starve it.
	HostBytes int64
	// DeviceBytes caps per-instance device-tier residency. Zero defaults to
	// an eighth of the instance's GPU KV pool.
	DeviceBytes int64
	// Policy is the eviction policy.
	Policy Policy
	// PromoteAfter is the hit count at which an entry earns a device copy on
	// the instance that reused it. Zero defaults to 1 (promote on first
	// reuse).
	PromoteAfter int
	// Routing enables cache-aware placement in the serving layer. The cache
	// itself only records the flag; internal/core consults it.
	Routing bool
	// Journal, when non-nil, receives a decision record for every eviction
	// victim choice (host and device tiers). Nil keeps eviction
	// journal-free — the usual zero-overhead off path.
	Journal *decision.Journal
	// Clock supplies virtual time for journal records (nil stamps zero).
	Clock func() sim.Time
}

// classInfo caches per-model registration so promotion does not need the
// KV shape again.
type classInfo struct {
	label      string
	blockBytes int64
	shape      model.KVShape
}

// entry is one cached block: tokens [(depth-1)*B, depth*B) of some prompt,
// identified by the chained hash of everything up to and including it.
type entry struct {
	model string
	hash  uint64
	depth int // 1-based block count covered from the prompt start

	parent   *entry
	children int // entries whose parent is this one

	refs    int    // in-flight pins; >0 bars reclamation
	hits    uint64 // lifetime reuse count (Acquire matches)
	lastUse sim.Time

	class      string
	blockBytes int64
	hostBlock  memory.Block

	dev         map[string]memory.Block // instance -> device copy
	devChildren map[string]int          // instance -> children holding a device copy there
}

// Cache is the global prefix cache. All methods are safe for concurrent use:
// the simulator core runs single-threaded, but gateway scrape handlers and
// race tests touch the cache from other goroutines.
type Cache struct {
	mu   sync.Mutex
	cfg  Config
	host *kvcache.Cache

	devices   map[string]*kvcache.Cache
	devBudget map[string]int64

	block   int                         // tokens per block
	index   map[string]map[uint64]*entry // model -> chunk hash -> entry
	classes map[string]classInfo         // model -> host-registered class

	hostBytes int64
	devBytes  map[string]int64

	st       stats
	perModel map[string]*ModelStats
}

type stats struct {
	lookups, hits, tokensSaved, prefillTokens uint64
	inserts, insertedBlocks                   uint64
	hostEvictions, deviceEvictions            uint64
	promotions                                uint64
	deviceDrops                               uint64
}

// ModelStats is per-model reuse accounting.
type ModelStats struct {
	Lookups     uint64
	Hits        uint64
	TokensSaved uint64
}

// Stats is a point-in-time snapshot of the cache.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	TokensSaved   uint64
	PrefillTokens uint64
	Inserts       uint64

	HostEvictions   uint64
	DeviceEvictions uint64
	Promotions      uint64
	DeviceDrops     uint64

	HostEntries   int
	DeviceCopies  int
	PinnedEntries int

	HostBytes   int64
	DeviceBytes int64

	PerModel              map[string]ModelStats
	DeviceBytesByInstance map[string]int64
}

// HitRatio returns Hits/Lookups (0 with no lookups).
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// SavedRatio returns TokensSaved/PrefillTokens (0 with no lookups).
func (s Stats) SavedRatio() float64 {
	if s.PrefillTokens == 0 {
		return 0
	}
	return float64(s.TokensSaved) / float64(s.PrefillTokens)
}

// New builds a prefix cache whose host tier allocates from the given CPU KV
// cache. Block granularity is inherited from the host tier.
func New(cfg Config, host *kvcache.Cache) *Cache {
	if cfg.HostBytes <= 0 {
		cfg.HostBytes = host.Pool().Capacity() / 4
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = 1
	}
	return &Cache{
		cfg:       cfg,
		host:      host,
		devices:   map[string]*kvcache.Cache{},
		devBudget: map[string]int64{},
		block:     host.BlockTokens(),
		index:     map[string]map[uint64]*entry{},
		classes:   map[string]classInfo{},
		devBytes:  map[string]int64{},
		perModel:  map[string]*ModelStats{},
	}
}

// AttachDevice registers an instance's GPU KV cache as a device tier.
// Promotions for that instance allocate from it. The granularity must match
// the host tier's.
func (c *Cache) AttachDevice(instance string, dev *kvcache.Cache) {
	if dev.BlockTokens() != c.block {
		panic(fmt.Sprintf("prefixcache: device tier %s block tokens %d != host %d",
			instance, dev.BlockTokens(), c.block))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.devices[instance] = dev
	b := c.cfg.DeviceBytes
	if b <= 0 {
		b = dev.Pool().Capacity() / 8
	}
	c.devBudget[instance] = b
}

// Routing reports whether cache-aware placement is enabled.
func (c *Cache) Routing() bool { return c.cfg.Routing }

// BlockTokens returns the cache's block granularity.
func (c *Cache) BlockTokens() int { return c.block }

func (c *Cache) modelStats(m string) *ModelStats {
	ms := c.perModel[m]
	if ms == nil {
		ms = &ModelStats{}
		c.perModel[m] = ms
	}
	return ms
}

// ensureClass registers the model's KV shape with the host tier once.
func (c *Cache) ensureClass(m string, shape model.KVShape) (classInfo, error) {
	if ci, ok := c.classes[m]; ok {
		return ci, nil
	}
	label, err := c.host.RegisterShape(shape)
	if err != nil {
		return classInfo{}, err
	}
	ci := classInfo{label: label, blockBytes: c.host.BlockBytes(label), shape: shape}
	c.classes[m] = ci
	return ci, nil
}

// walk returns the resident chain matching the first maxBlocks blocks of the
// prompt. Leaf-only eviction guarantees the chain is contiguous from the
// root, so the walk stops at the first absent chunk hash.
func (c *Cache) walk(m string, segs []workload.PromptSeg, maxBlocks int) []*entry {
	idx := c.index[m]
	if idx == nil || maxBlocks <= 0 {
		return nil
	}
	hashes := ChunkHashes(segs, maxBlocks, c.block)
	var chain []*entry
	for _, h := range hashes {
		e := idx[h]
		if e == nil {
			break
		}
		chain = append(chain, e)
	}
	return chain
}

// Hit is a pinned prefix match. The holder must call Release exactly when
// the reuse copy has been charged (or the request died); Release is
// idempotent.
type Hit struct {
	c        *Cache
	instance string
	chain    []*entry
	released bool

	// MatchedTokens is the prefix length served from the cache; prefill
	// skips these tokens.
	MatchedTokens int
	// DeviceTokens of those were already resident on the consuming
	// instance's device tier (contiguous from the prompt start).
	DeviceTokens int
	// HostBytes is the volume to copy host→device (the non-device-resident
	// part of the match); DeviceBytes the volume copied on-device.
	HostBytes   int64
	DeviceBytes int64
}

// Acquire looks up the longest cached prefix of a prompt about to prefill on
// instance, pins it, and returns it — or nil on a miss. The match is capped
// one token short of the prompt so at least one token always prefills (the
// model must produce output, and TTFT stays well-defined).
func (c *Cache) Acquire(instance, m string, shape model.KVShape, segs []workload.PromptSeg, tokens int, now sim.Time) *Hit {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.st.lookups++
	c.st.prefillTokens += uint64(tokens)
	ms := c.modelStats(m)
	ms.Lookups++

	maxBlocks := (tokens - 1) / c.block
	chain := c.walk(m, segs, maxBlocks)
	if len(chain) == 0 {
		return nil
	}

	h := &Hit{c: c, instance: instance, chain: chain}
	devDepth := 0
	for i, e := range chain {
		e.refs++
		e.hits++
		e.lastUse = now
		if i == devDepth {
			if _, ok := e.dev[instance]; ok {
				devDepth++
			}
		}
	}
	h.MatchedTokens = len(chain) * c.block
	h.DeviceTokens = devDepth * c.block
	for i, e := range chain {
		if i < devDepth {
			h.DeviceBytes += e.blockBytes
		} else {
			h.HostBytes += e.blockBytes
		}
	}

	c.st.hits++
	c.st.tokensSaved += uint64(h.MatchedTokens)
	ms.Hits++
	ms.TokensSaved += uint64(h.MatchedTokens)
	// Remember the shape so promotion in Release can register device classes
	// even if the model was only ever seen via Acquire.
	if _, err := c.ensureClass(m, shape); err != nil {
		// Registration of an already-resident model cannot fail (the chain
		// exists, so the class does); tolerate and skip.
		_ = err
	}
	return h
}

// Release unpins the hit's chain and promotes reused entries to the
// consuming instance's device tier, budget permitting. Safe to call more
// than once; only the first call acts.
func (h *Hit) Release(now sim.Time) {
	if h == nil || h.released {
		return
	}
	h.released = true
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range h.chain {
		if e.refs > 0 {
			e.refs--
		}
	}
	// Promote root-first so device residency stays contiguous from the
	// prompt start (a device walk stops at the first non-resident block, so
	// a gap would strand everything after it).
	dev := c.devices[h.instance]
	if dev == nil {
		return
	}
	for _, e := range h.chain {
		if _, ok := e.dev[h.instance]; ok {
			continue
		}
		if e.hits < uint64(c.cfg.PromoteAfter) {
			break
		}
		if !c.promote(e, h.instance, dev, now) {
			break
		}
	}
}

// promote gives e a device copy on instance. Caller holds c.mu.
func (c *Cache) promote(e *entry, instance string, dev *kvcache.Cache, now sim.Time) bool {
	ci, ok := c.classes[e.model]
	if !ok {
		return false
	}
	// Making room for e must not evict e's own ancestors: their copies were
	// just promoted (or are what makes e's copy reachable — a device walk is
	// contiguous from the root), and the pins protecting them were dropped
	// before this loop ran.
	exclude := map[*entry]bool{}
	for a := e.parent; a != nil; a = a.parent {
		exclude[a] = true
	}
	if !c.ensureDeviceRoom(instance, e.blockBytes, exclude) {
		return false
	}
	if _, err := dev.RegisterShape(ci.shape); err != nil {
		return false
	}
	b, err := dev.Pool().Alloc(ci.label)
	if err != nil {
		// The instance's GPU pool is full of sequence KV; skip promotion
		// rather than fight the serving path for VRAM.
		return false
	}
	if e.dev == nil {
		e.dev = map[string]memory.Block{}
	}
	e.dev[instance] = b
	c.devBytes[instance] += e.blockBytes
	if e.parent != nil {
		if e.parent.devChildren == nil {
			e.parent.devChildren = map[string]int{}
		}
		e.parent.devChildren[instance]++
	}
	e.lastUse = now
	c.st.promotions++
	return true
}

// Insert records the full block-aligned prefix of a freshly computed prompt.
// The KV payload is already on the computing instance; the host copy rides
// along the existing prefill→decode offload path, so insertion charges no
// additional transfer in the latency model (see DESIGN.md §12). Existing
// entries along the path are refreshed; missing ones are allocated from the
// host pool, evicting unpinned leaves as needed. Insertion stops early if
// the budget cannot be met — the cached chain is still valid, just shorter.
func (c *Cache) Insert(m string, shape model.KVShape, segs []workload.PromptSeg, tokens int, now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()

	nblocks := tokens / c.block
	if nblocks <= 0 {
		return
	}
	ci, err := c.ensureClass(m, shape)
	if err != nil {
		return
	}
	hashes := ChunkHashes(segs, nblocks, c.block)
	idx := c.index[m]
	if idx == nil {
		idx = map[uint64]*entry{}
		c.index[m] = idx
	}
	c.st.inserts++

	// Pin the path as it is walked/built so eviction triggered for block k
	// cannot reclaim the blocks 0..k-1 just traversed or created.
	var path []*entry
	defer func() {
		for _, e := range path {
			e.refs--
		}
	}()

	var parent *entry
	for k, hsh := range hashes {
		if e := idx[hsh]; e != nil {
			e.lastUse = now
			e.refs++
			path = append(path, e)
			parent = e
			continue
		}
		if !c.ensureHostRoom(ci.blockBytes) {
			return
		}
		b, err := c.host.Pool().Alloc(ci.label)
		if err != nil {
			// Host pool exhausted by sequence swap-outs; make one more
			// attempt after evicting, then give up on the tail.
			if !c.evictHostOne() {
				return
			}
			if b, err = c.host.Pool().Alloc(ci.label); err != nil {
				return
			}
		}
		e := &entry{
			model:      m,
			hash:       hsh,
			depth:      k + 1,
			parent:     parent,
			refs:       1,
			lastUse:    now,
			class:      ci.label,
			blockBytes: ci.blockBytes,
			hostBlock:  b,
		}
		if parent != nil {
			parent.children++
		}
		idx[hsh] = e
		c.hostBytes += ci.blockBytes
		c.st.insertedBlocks++
		path = append(path, e)
		parent = e
	}
}

// ensureHostRoom evicts until one more block of size bb fits the budget.
func (c *Cache) ensureHostRoom(bb int64) bool {
	for c.hostBytes+bb > c.cfg.HostBytes {
		if !c.evictHostOne() {
			return false
		}
	}
	return true
}

// evictHostOne removes one unpinned leaf from the host tier (and with it any
// device copies). Returns false when every entry is pinned or interior.
func (c *Cache) evictHostOne() bool {
	v := c.pickVictim(func(e *entry) bool { return e.children == 0 && e.refs == 0 })
	if v == nil {
		return false
	}
	c.journalEviction("host_evict", "", v)
	c.removeEntry(v)
	c.st.hostEvictions++
	return true
}

// journalEviction records one eviction victim choice. Caller holds c.mu; the
// journal has its own lock and never calls back into the cache.
func (c *Cache) journalEviction(tier, instance string, v *entry) {
	j := c.cfg.Journal
	if j == nil {
		return
	}
	var at sim.Time
	if c.cfg.Clock != nil {
		at = c.cfg.Clock()
	}
	j.Record(decision.Record{At: at, Kind: decision.KindPrefixEviction,
		Instance: instance, Model: v.model,
		Outcome: tier,
		Reason:  c.cfg.Policy.String() + " victim " + fmt.Sprintf("%x@%d", v.hash, v.depth),
		Inputs: []decision.Term{
			{Name: "depth", Value: float64(v.depth)},
			{Name: "hits", Value: float64(v.hits)},
			decision.NsTerm("last_use", v.lastUse),
			{Name: "block_bytes", Value: float64(v.blockBytes)},
		}})
}

// pickVictim scans every entry passing ok and returns the minimum of the
// policy's total order. O(entries), deterministic.
func (c *Cache) pickVictim(ok func(*entry) bool) *entry {
	var best *entry
	for _, idx := range c.index {
		for _, e := range idx {
			if !ok(e) {
				continue
			}
			if best == nil || c.less(e, best) {
				best = e
			}
		}
	}
	return best
}

// less is the eviction total order: policy key, then model and hash so ties
// never fall back to map iteration order.
func (c *Cache) less(a, b *entry) bool {
	if c.cfg.Policy == PolicyFreq {
		if a.hits != b.hits {
			return a.hits < b.hits
		}
	}
	if a.lastUse != b.lastUse {
		return a.lastUse < b.lastUse
	}
	if a.model != b.model {
		return a.model < b.model
	}
	return a.hash < b.hash
}

// removeEntry frees an unpinned leaf's host block and device copies and
// unlinks it. Caller holds c.mu.
func (c *Cache) removeEntry(e *entry) {
	if err := c.host.Pool().Free(e.hostBlock); err != nil {
		panic(fmt.Sprintf("prefixcache: host free: %v", err))
	}
	c.hostBytes -= e.blockBytes
	for inst, b := range e.dev {
		if dev := c.devices[inst]; dev != nil {
			if err := dev.Pool().Free(b); err != nil {
				panic(fmt.Sprintf("prefixcache: device free on %s: %v", inst, err))
			}
		}
		c.devBytes[inst] -= e.blockBytes
		if e.parent != nil {
			e.parent.devChildren[inst]--
		}
	}
	if e.parent != nil {
		e.parent.children--
	}
	// The model's (possibly now empty) map stays resident: Insert holds a
	// reference to it across evictions it triggers, so dropping it here would
	// orphan the map and lose the entries inserted after the eviction.
	delete(c.index[e.model], e.hash)
}

// ensureDeviceRoom evicts instance-local device copies until bb more bytes
// fit that instance's budget, never touching excluded entries.
func (c *Cache) ensureDeviceRoom(instance string, bb int64, exclude map[*entry]bool) bool {
	budget := c.devBudget[instance]
	for c.devBytes[instance]+bb > budget {
		if !c.evictDeviceOne(instance, exclude) {
			return false
		}
	}
	return true
}

// evictDeviceOne drops one unpinned device-leaf copy from instance. The
// host copy stays; only the accelerator copy goes.
func (c *Cache) evictDeviceOne(instance string, exclude map[*entry]bool) bool {
	v := c.pickVictim(func(e *entry) bool {
		if e.refs != 0 || exclude[e] {
			return false
		}
		if _, ok := e.dev[instance]; !ok {
			return false
		}
		return e.devChildren[instance] == 0
	})
	if v == nil {
		return false
	}
	c.journalEviction("device_evict", instance, v)
	c.dropDeviceCopy(v, instance, true)
	c.st.deviceEvictions++
	return true
}

// dropDeviceCopy removes e's device copy on instance. free=false means the
// device memory died with the instance (crash) and must not be returned to
// its pool.
func (c *Cache) dropDeviceCopy(e *entry, instance string, free bool) {
	b, ok := e.dev[instance]
	if !ok {
		return
	}
	if free {
		if dev := c.devices[instance]; dev != nil {
			if err := dev.Pool().Free(b); err != nil {
				panic(fmt.Sprintf("prefixcache: device free on %s: %v", instance, err))
			}
		}
	}
	delete(e.dev, instance)
	c.devBytes[instance] -= e.blockBytes
	if e.parent != nil && e.parent.devChildren != nil {
		e.parent.devChildren[instance]--
	}
}

// EvictDeviceBytes is the serving path's pressure valve: when sequence
// allocation on an instance hits OOM, core asks the prefix cache to give
// back up to n bytes of that instance's device copies. Returns bytes freed.
func (c *Cache) EvictDeviceBytes(instance string, n int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < n {
		before := c.devBytes[instance]
		if !c.evictDeviceOne(instance, nil) {
			break
		}
		freed += before - c.devBytes[instance]
	}
	return freed
}

// DropInstance forgets every device copy held by a crashed instance without
// returning blocks to its pool — the VRAM died with the process. Future
// promotions to the instance stop until it is re-attached.
func (c *Cache) DropInstance(instance string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, idx := range c.index {
		for _, e := range idx {
			if _, ok := e.dev[instance]; ok {
				c.dropDeviceCopy(e, instance, false)
				c.st.deviceDrops++
			}
		}
	}
	c.devBytes[instance] = 0
	delete(c.devices, instance)
	delete(c.devBudget, instance)
}

// MatchTokensOn reports, without mutating any state, how many prompt tokens
// an instance could serve from cache (total) and how many of those are
// already resident on its device tier. The router's placement score is built
// from this.
func (c *Cache) MatchTokensOn(instance, m string, segs []workload.PromptSeg, tokens int) (matched, onDevice int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	chain := c.walk(m, segs, (tokens-1)/c.block)
	devDepth := 0
	for i, e := range chain {
		if i == devDepth {
			if _, ok := e.dev[instance]; ok {
				devDepth++
			}
		}
	}
	return len(chain) * c.block, devDepth * c.block
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Lookups:               c.st.lookups,
		Hits:                  c.st.hits,
		TokensSaved:           c.st.tokensSaved,
		PrefillTokens:         c.st.prefillTokens,
		Inserts:               c.st.inserts,
		HostEvictions:         c.st.hostEvictions,
		DeviceEvictions:       c.st.deviceEvictions,
		Promotions:            c.st.promotions,
		DeviceDrops:           c.st.deviceDrops,
		HostBytes:             c.hostBytes,
		PerModel:              map[string]ModelStats{},
		DeviceBytesByInstance: map[string]int64{},
	}
	for m, ms := range c.perModel {
		s.PerModel[m] = *ms
	}
	for inst, b := range c.devBytes {
		if b != 0 {
			s.DeviceBytesByInstance[inst] = b
		}
		s.DeviceBytes += b
	}
	for _, idx := range c.index {
		for _, e := range idx {
			s.HostEntries++
			s.DeviceCopies += len(e.dev)
			if e.refs > 0 {
				s.PinnedEntries++
			}
		}
	}
	return s
}

// PinnedEntries returns the number of entries with a nonzero refcount. At
// quiescence (no in-flight prefill) it must be zero — the chaos invariants
// check exactly that.
func (c *Cache) PinnedEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, idx := range c.index {
		for _, e := range idx {
			if e.refs > 0 {
				n++
			}
		}
	}
	return n
}

// HostResidentBytes returns bytes of the shared CPU pool held by the cache.
func (c *Cache) HostResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hostBytes
}

// DeviceResidentBytes returns bytes of an instance's GPU pool held by the
// cache's device copies there.
func (c *Cache) DeviceResidentBytes(instance string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.devBytes[instance]
}

// CheckConsistency audits internal invariants and returns human-readable
// violations (empty when healthy): byte accounting matches entry sums,
// child/device-child counts match links, every non-root entry's parent is
// resident, and no refcount is negative.
func (c *Cache) CheckConsistency() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bad []string
	var hostSum int64
	devSum := map[string]int64{}
	children := map[*entry]int{}
	devChildren := map[*entry]map[string]int{}
	var all []*entry
	for _, idx := range c.index {
		for _, e := range idx {
			all = append(all, e)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].model != all[j].model {
			return all[i].model < all[j].model
		}
		return all[i].hash < all[j].hash
	})
	for _, e := range all {
		hostSum += e.blockBytes
		for inst := range e.dev {
			devSum[inst] += e.blockBytes
		}
		if e.refs < 0 {
			bad = append(bad, fmt.Sprintf("entry %s/%x: negative refcount %d", e.model, e.hash, e.refs))
		}
		if e.parent != nil {
			children[e.parent]++
			if c.index[e.parent.model][e.parent.hash] != e.parent {
				bad = append(bad, fmt.Sprintf("entry %s/%x depth %d: parent not resident", e.model, e.hash, e.depth))
			}
			for inst := range e.dev {
				if devChildren[e.parent] == nil {
					devChildren[e.parent] = map[string]int{}
				}
				devChildren[e.parent][inst]++
			}
		}
	}
	for _, e := range all {
		if e.children != children[e] {
			bad = append(bad, fmt.Sprintf("entry %s/%x: children=%d, actual %d", e.model, e.hash, e.children, children[e]))
		}
		for inst, n := range e.devChildren {
			if n != devChildren[e][inst] {
				bad = append(bad, fmt.Sprintf("entry %s/%x: devChildren[%s]=%d, actual %d", e.model, e.hash, inst, n, devChildren[e][inst]))
			}
		}
	}
	if hostSum != c.hostBytes {
		bad = append(bad, fmt.Sprintf("host bytes: tracked %d, entries sum %d", c.hostBytes, hostSum))
	}
	for inst, b := range c.devBytes {
		if b != devSum[inst] {
			bad = append(bad, fmt.Sprintf("device bytes on %s: tracked %d, entries sum %d", inst, b, devSum[inst]))
		}
	}
	return bad
}
