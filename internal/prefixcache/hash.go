package prefixcache

import "aegaeon/internal/workload"

// Prompt content is modeled as deterministic token streams (workload.PromptSeg:
// a seed plus a length), so two requests share a prefix exactly when their
// segment lists agree over it. The index never stores tokens: it stores one
// chained hash per block, so a lookup is a walk down the chain and a partial
// match stops at the first block whose chunk hash is absent.

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap, well-mixed
// 64-bit permutation used both to derive token values from (seed, position)
// and to fold tokens into the running chunk hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4a2a7f6bfec3
	return x ^ (x >> 31)
}

// tokenAt returns the deterministic token value at absolute position pos of
// the prompt described by segs. Positions beyond the segments return 0s —
// callers bound their walks by the segment sum.
func tokenAt(segs []workload.PromptSeg, pos int) uint64 {
	for _, s := range segs {
		if pos < s.Len {
			return splitmix64(s.Seed ^ splitmix64(uint64(pos)+1))
		}
		pos -= s.Len
	}
	return 0
}

// SegTokens returns the total token count described by the segments.
func SegTokens(segs []workload.PromptSeg) int {
	n := 0
	for _, s := range segs {
		n += s.Len
	}
	return n
}

// ChunkHashes returns the chained block-aligned hashes of the first nblocks
// blocks of the prompt: hash k covers tokens [0, (k+1)*block) because each
// chunk hash folds in its predecessor. Equal hash at depth k therefore means
// equal content over the whole prefix, which is what lets a lookup stop at
// the first absent chunk and still trust everything before it.
func ChunkHashes(segs []workload.PromptSeg, nblocks, block int) []uint64 {
	if nblocks <= 0 || block <= 0 {
		return nil
	}
	if avail := SegTokens(segs) / block; nblocks > avail {
		nblocks = avail
	}
	out := make([]uint64, 0, nblocks)
	h := uint64(0x61656761656f6e00) // chain seed; arbitrary but fixed
	pos := 0
	for k := 0; k < nblocks; k++ {
		for i := 0; i < block; i++ {
			h = splitmix64(h ^ tokenAt(segs, pos))
			pos++
		}
		out = append(out, h)
	}
	return out
}
