package engine

import (
	"math"
	"testing"
	"time"

	"aegaeon/internal/gpu"
	"aegaeon/internal/kvcache"
	"aegaeon/internal/latency"
	"aegaeon/internal/memory"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
)

type harness struct {
	sim   *sim.Engine
	cache *memory.ModelCache
	cpuKV *kvcache.Cache
}

func newHarness() *harness {
	return &harness{
		sim:   sim.NewEngine(1),
		cache: memory.NewModelCache(640 << 30),
		cpuKV: kvcache.NewCache("cpu", 320<<30, 64<<20, 16),
	}
}

func (h *harness) engine(name string, opts Options, warmCache ...string) *Engine {
	for _, m := range warmCache {
		mm, err := model.ByName(m)
		if err != nil {
			panic(err)
		}
		if err := h.cache.Insert(mm.Name, mm.WeightBytes()); err != nil {
			panic(err)
		}
	}
	return New(h.sim, name, Config{
		Prof:               latency.H800(),
		TP:                 1,
		Opts:               opts,
		WeightsRegionBytes: 60 << 30,
		KVRegionBytes:      16 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
	})
}

func mustModel(t *testing.T, name string) *model.Model {
	t.Helper()
	m, err := model.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// T0: unoptimized cold switch of a 13B model costs ~26.9s of init plus the
// GC pause when a model was previously resident.
func TestUnoptimizedSwitchIsT0(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Unoptimized(), "LLaMA-13B", "Qwen-7B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")

	var first, second sim.Time
	e.SwitchTo(m7, func() {
		first = h.sim.Now()
		e.SwitchTo(m13, func() { second = h.sim.Now() })
	})
	h.sim.Run()

	cost13 := latency.NewCostModel(latency.H800(), m13, 1)
	wantSecond := latency.H800().GCPause + cost13.NaiveInit()
	gotSecond := second - first
	if math.Abs((gotSecond - wantSecond).Seconds()) > 0.01 {
		t.Fatalf("T0 13B switch = %v, want %v (gc + full reinit)", gotSecond, wantSecond)
	}
	if e.Stats().Reinits != 2 || e.Stats().GCPauses != 1 {
		t.Fatalf("stats = %+v", *e.Stats())
	}
}

// T1: component reuse skips reinitialization after first boot; switch cost
// becomes gc + optimized load.
func TestComponentReuseIsT1(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Options{ComponentReuse: true}, "LLaMA-13B", "Qwen-7B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")
	var first, second sim.Time
	e.SwitchTo(m7, func() {
		first = h.sim.Now()
		e.SwitchTo(m13, func() { second = h.sim.Now() })
	})
	h.sim.Run()
	want := latency.H800().GCPause + latency.NewCostModel(latency.H800(), m13, 1).Switch()
	got := second - first
	if math.Abs((got - want).Seconds()) > 0.01 {
		t.Fatalf("T1 switch = %v, want %v", got, want)
	}
	if e.Stats().Reinits != 1 {
		t.Fatalf("reinits = %d, want 1 (first boot only)", e.Stats().Reinits)
	}
}

// T2: adding explicit memory management removes the GC pause.
func TestExplicitMemoryIsT2(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Options{ComponentReuse: true, ExplicitMemory: true},
		"LLaMA-13B", "Qwen-7B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")
	var first, second sim.Time
	e.SwitchTo(m7, func() {
		first = h.sim.Now()
		e.SwitchTo(m13, func() { second = h.sim.Now() })
	})
	h.sim.Run()
	want := latency.NewCostModel(latency.H800(), m13, 1).Switch()
	got := second - first
	if math.Abs((got - want).Seconds()) > 0.01 {
		t.Fatalf("T2 switch = %v, want %v (load only)", got, want)
	}
	if e.Stats().GCPauses != 0 {
		t.Fatal("explicit memory still paid a GC pause")
	}
}

// Prefetch hit: switch collapses to an on-device copy — near-instant.
func TestPrefetchHitNearInstant(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "LLaMA-13B", "Qwen-7B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")
	var first, second sim.Time
	e.SwitchTo(m7, func() {
		first = h.sim.Now()
		if !e.StartPrefetch(m13) {
			t.Error("prefetch refused despite spare VRAM")
		}
		// Give the prefetch time to finish (a decode turn's worth).
		h.sim.After(4*time.Second, func() {
			e.SwitchTo(m13, func() { second = h.sim.Now() })
		})
	})
	h.sim.Run()
	exposed := second - first - 4*time.Second
	if exposed > 100*time.Millisecond {
		t.Fatalf("prefetch-hit switch exposed %v, want near-instant", exposed)
	}
	if e.Stats().PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d", e.Stats().PrefetchHits)
	}
}

func TestPrefetchRefusedWithoutRoom(t *testing.T) {
	// A10-like: weights region fits one 7B model only (§7.4 disables
	// prefetching on 24 GB GPUs).
	h := newHarness()
	e := New(h.sim, "a10", Config{
		Prof:               latency.A10(),
		TP:                 1,
		Opts:               AllOptimizations(),
		WeightsRegionBytes: 16 << 30,
		KVRegionBytes:      4 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
	})
	m7 := mustModel(t, "Qwen-7B")
	yi := mustModel(t, "Yi-6B")
	_ = h.cache.Insert(m7.Name, m7.WeightBytes())
	_ = h.cache.Insert(yi.Name, yi.WeightBytes())
	done := false
	e.SwitchTo(m7, func() {
		if e.StartPrefetch(yi) {
			t.Error("prefetch accepted without VRAM room")
		}
		done = true
	})
	h.sim.Run()
	if !done {
		t.Fatal("switch never completed")
	}
}

func TestStalePrefetchDropped(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "LLaMA-13B", "Qwen-7B", "Yi-6B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")
	yi := mustModel(t, "Yi-6B")
	e.SwitchTo(m7, func() {
		e.StartPrefetch(yi) // prefetch Yi, but switch to 13B instead
		h.sim.After(2*time.Second, func() {
			e.SwitchTo(m13, func() {})
		})
	})
	h.sim.Run()
	if e.Stats().PrefetchHits != 0 {
		t.Fatal("stale prefetch counted as hit")
	}
	if e.Prefetched() != nil {
		t.Fatal("stale prefetch not dropped")
	}
	if e.Current().Name != m13.Name {
		t.Fatalf("current = %v", e.Current())
	}
}

func TestCacheMissFetchesFromRegistry(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Options{ComponentReuse: true, ExplicitMemory: true}) // cold cache
	m7 := mustModel(t, "Qwen-7B")
	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()
	cost := latency.NewCostModel(latency.H800(), m7, 1)
	// First boot reinit + NVMe-tier fetch + optimized load.
	fetch := time.Duration(float64(m7.WeightBytes()) / 6e9 * float64(time.Second))
	minWant := fetch + cost.Switch()
	if done < minWant {
		t.Fatalf("cold-cache switch took %v, must include %v registry fetch", done, minWant)
	}
	if e.Stats().CacheMisses != 1 {
		t.Fatalf("cache misses = %d", e.Stats().CacheMisses)
	}
	// Second engine hits the now-populated cache.
	if !h.cache.Peek(m7.Name) {
		t.Fatal("fetched model not inserted into cache")
	}
}

func TestSwitchToSameModelIsFree(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "Qwen-7B")
	m7 := mustModel(t, "Qwen-7B")
	e.SwitchTo(m7, func() {
		before := h.sim.Now()
		e.SwitchTo(m7, func() {
			if h.sim.Now() != before {
				t.Error("same-model switch consumed time")
			}
		})
	})
	h.sim.Run()
	if e.Stats().Switches != 1 {
		t.Fatalf("switches = %d, want 1 (no-op switch not counted)", e.Stats().Switches)
	}
}

func TestConcurrentSwitchPanics(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "Qwen-7B", "Yi-6B")
	e.SwitchTo(mustModel(t, "Qwen-7B"), func() {})
	defer func() {
		if recover() == nil {
			t.Error("concurrent SwitchTo did not panic")
		}
	}()
	e.SwitchTo(mustModel(t, "Yi-6B"), func() {})
}

func TestPrefillAndDecodeTiming(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "Qwen-7B")
	m7 := mustModel(t, "Qwen-7B")
	cost := latency.NewCostModel(latency.H800(), m7, 1)
	var t0, t1, t2 sim.Time
	e.SwitchTo(m7, func() {
		t0 = h.sim.Now()
		e.Prefill(1000, func() {
			t1 = h.sim.Now()
			e.DecodeStep(5000, func() { t2 = h.sim.Now() })
		})
	})
	h.sim.Run()
	if got, want := t1-t0, cost.Prefill(1000); got != want {
		t.Fatalf("prefill took %v, want %v", got, want)
	}
	if got, want := t2-t1, cost.DecodeStep(5000); got != want {
		t.Fatalf("decode step took %v, want %v", got, want)
	}
	if e.Stats().PrefillJobs != 1 || e.Stats().DecodeSteps != 1 {
		t.Fatalf("job counters = %+v", *e.Stats())
	}
}

func TestExecuteWithoutModelPanics(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations())
	defer func() {
		if recover() == nil {
			t.Error("Prefill without model did not panic")
		}
	}()
	e.Prefill(100, func() {})
}

func TestSwitchEstimateMatchesReality(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Options{ComponentReuse: true, ExplicitMemory: true},
		"LLaMA-13B", "Qwen-7B")
	m13 := mustModel(t, "LLaMA-13B")
	m7 := mustModel(t, "Qwen-7B")
	var est, actual time.Duration
	var first sim.Time
	e.SwitchTo(m7, func() {
		first = h.sim.Now()
		est = e.SwitchEstimate(m13)
		e.SwitchTo(m13, func() { actual = h.sim.Now() - first })
	})
	h.sim.Run()
	if math.Abs((est - actual).Seconds()) > 0.05 {
		t.Fatalf("estimate %v vs actual %v", est, actual)
	}
	// Same-model estimate is zero.
	if e.SwitchEstimate(m13) != 0 {
		t.Fatal("same-model estimate non-zero")
	}
}

// The headline §5 claim: full optimizations cut the preemptive switch cost
// by >95% vs the unoptimized pipeline (97% with KV overlap, measured in the
// core package where transfers exist).
func TestOptimizationLadder(t *testing.T) {
	measure := func(opts Options) time.Duration {
		h := newHarness()
		e := h.engine("gpu0", opts, "LLaMA-13B", "Qwen-7B")
		m13 := mustModel(t, "LLaMA-13B")
		m7 := mustModel(t, "Qwen-7B")
		var first, second sim.Time
		e.SwitchTo(m7, func() {
			first = h.sim.Now()
			e.SwitchTo(m13, func() { second = h.sim.Now() })
		})
		h.sim.Run()
		return second - first
	}
	t0 := measure(Unoptimized())
	t1 := measure(Options{ComponentReuse: true})
	t2 := measure(Options{ComponentReuse: true, ExplicitMemory: true})
	if !(t0 > t1 && t1 > t2) {
		t.Fatalf("optimization ladder not monotone: T0=%v T1=%v T2=%v", t0, t1, t2)
	}
	if r := 1 - t1.Seconds()/t0.Seconds(); r < 0.80 {
		t.Errorf("component reuse removed only %.0f%% of latency, §5.1 claims >80%%", 100*r)
	}
	if t2 > 1500*time.Millisecond {
		t.Errorf("T2 = %v, want ~Eq.4 load time (≈1.3s at TP=1)", t2)
	}
}

// The stage buffer streams weights in chunks (§5.2): a KV-sized transfer
// submitted while a multi-GB load is in flight must interleave, not wait
// for the whole load.
func TestChunkedLoadInterleavesDMA(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "LLaMA-13B")
	m13 := mustModel(t, "LLaMA-13B")
	var kvDone sim.Time
	e.SwitchTo(m13, func() {})
	// Submit a small H2D op (a KV swap-in) right after the load started.
	kvStream := e.Device().NewStream("kv-in-test")
	h.sim.After(time.Millisecond, func() {
		kvStream.Submit(gpu.H2D, 10*time.Millisecond, "kv", func() { kvDone = h.sim.Now() })
	})
	h.sim.Run()
	loadTime := latency.NewCostModel(latency.H800(), m13, 1).Switch()
	if kvDone >= loadTime {
		t.Fatalf("KV transfer finished at %v, after the whole %v load — no interleaving", kvDone, loadTime)
	}
	if kvDone < 11*time.Millisecond {
		t.Fatalf("KV transfer at %v finished impossibly early", kvDone)
	}
}

func TestEffectiveSwitchCost(t *testing.T) {
	h := newHarness()
	withPrefetch := h.engine("gpu0", AllOptimizations(), "Qwen-7B")
	m7 := mustModel(t, "Qwen-7B")
	eff := withPrefetch.EffectiveSwitchCost(m7)
	full := withPrefetch.SwitchCost(m7)
	if eff >= full/10 {
		t.Fatalf("prefetch-capable effective cost %v not ≪ full cost %v", eff, full)
	}
	// Without prefetch (or without room), the effective cost is the full cost.
	noPf := Options{ComponentReuse: true, ExplicitMemory: true}
	e2 := h.engine("gpu1", noPf, "Qwen-7B")
	if got := e2.EffectiveSwitchCost(m7); got != e2.SwitchCost(m7) {
		t.Fatalf("no-prefetch effective cost %v != switch cost %v", got, e2.SwitchCost(m7))
	}
}

func TestWarmBootSkipsFirstInit(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", Options{ComponentReuse: true, ExplicitMemory: true}, "Qwen-7B")
	e.WarmBoot()
	m7 := mustModel(t, "Qwen-7B")
	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()
	want := latency.NewCostModel(latency.H800(), m7, 1).Switch()
	if done > want+time.Millisecond {
		t.Fatalf("warm-booted first switch took %v, want ~%v (no reinit)", done, want)
	}
	if e.Stats().Reinits != 0 {
		t.Fatalf("reinits = %d after warm boot", e.Stats().Reinits)
	}
}

func TestPrefetchWhileSwitchingRefused(t *testing.T) {
	h := newHarness()
	e := h.engine("gpu0", AllOptimizations(), "Qwen-7B", "Yi-6B")
	m7 := mustModel(t, "Qwen-7B")
	yi := mustModel(t, "Yi-6B")
	started := e.StartPrefetch(yi) // engine idle, nothing loaded: allowed
	if !started {
		t.Fatal("prefetch refused on idle engine")
	}
	e.SwitchTo(m7, func() {})
	if e.StartPrefetch(yi) {
		// Already prefetched Yi: StartPrefetch reports true only for the
		// same model, which is correct.
		if e.Prefetched() == nil || e.Prefetched().Name != yi.Name {
			t.Fatal("prefetch state inconsistent")
		}
	}
	h.sim.Run()
}

// Colocation (§8): switching between resident models costs only an
// activation; non-resident models evict the LRU resident.
func TestColocateResidentSwitchNearFree(t *testing.T) {
	h := newHarness()
	opts := AllOptimizations()
	opts.Colocate = true
	e := New(h.sim, "gpu0", Config{
		Prof: latency.H800(), TP: 1, Opts: opts,
		WeightsRegionBytes: 60 << 30, // fits ~4 small models
		KVRegionBytes:      10 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
	})
	e.WarmBoot()
	m7 := mustModel(t, "Qwen-7B")
	yi := mustModel(t, "Yi-6B")
	llama := mustModel(t, "Llama-2-7B")
	for _, m := range []*model.Model{m7, yi, llama} {
		_ = h.cache.Insert(m.Name, m.WeightBytes())
	}
	var tSwitch time.Duration
	e.SwitchTo(m7, func() {
		e.SwitchTo(yi, func() {
			// Both now resident: switching back must be ~activation only.
			start := h.sim.Now()
			e.SwitchTo(m7, func() {
				tSwitch = h.sim.Now() - start
			})
		})
	})
	h.sim.Run()
	if tSwitch > 5*time.Millisecond {
		t.Fatalf("resident switch took %v, want ~1ms activation", tSwitch)
	}
	if e.Residents() != 2 {
		t.Fatalf("residents = %d, want 2", e.Residents())
	}
	if !e.IsResident(yi) || !e.IsResident(m7) {
		t.Fatal("residency tracking wrong")
	}
}

func TestColocateEvictsLRU(t *testing.T) {
	h := newHarness()
	opts := AllOptimizations()
	opts.Colocate = true
	e := New(h.sim, "gpu0", Config{
		Prof: latency.H800(), TP: 1, Opts: opts,
		WeightsRegionBytes: 30 << 30, // fits two ~13GB models, not three
		KVRegionBytes:      8 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
	})
	e.WarmBoot()
	yi := mustModel(t, "Yi-6B")                   // 12.1 GB
	llama := mustModel(t, "Llama-2-7B")           // 13.5 GB
	intern := mustModel(t, "InternLM2.5-7B-chat") // 15.5 GB
	for _, m := range []*model.Model{yi, llama, intern} {
		_ = h.cache.Insert(m.Name, m.WeightBytes())
	}
	e.SwitchTo(yi, func() {
		e.SwitchTo(llama, func() {
			// Region holds yi+llama. Switching to intern must evict yi
			// (LRU; llama is current).
			e.SwitchTo(intern, func() {})
		})
	})
	h.sim.Run()
	if e.IsResident(yi) {
		t.Fatal("LRU resident not evicted")
	}
	if !e.IsResident(llama) || !e.IsResident(intern) {
		t.Fatal("wrong eviction victim")
	}
}

func TestColocatePrefetchNeverEvicts(t *testing.T) {
	h := newHarness()
	opts := AllOptimizations()
	opts.Colocate = true
	e := New(h.sim, "gpu0", Config{
		Prof: latency.H800(), TP: 1, Opts: opts,
		WeightsRegionBytes: 30 << 30,
		KVRegionBytes:      8 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
	})
	e.WarmBoot()
	yi := mustModel(t, "Yi-6B")
	llama := mustModel(t, "Llama-2-7B")
	intern := mustModel(t, "InternLM2.5-7B-chat")
	for _, m := range []*model.Model{yi, llama, intern} {
		_ = h.cache.Insert(m.Name, m.WeightBytes())
	}
	e.SwitchTo(yi, func() {
		e.SwitchTo(llama, func() {
			if e.StartPrefetch(intern) {
				t.Error("prefetch displaced resident models")
			}
		})
	})
	h.sim.Run()
}
