// Package engine simulates an LLM inference engine instance (vLLM in the
// paper) running on one GPU or TP group: its initialization stage pipeline
// (Fig. 7: distributed executor, profiling, weight loading, KV-cache
// pinning, miscellaneous components), the component-reuse optimization of
// §5.1, the explicitly managed VRAM weights buffer and model
// prefetching of §5.2, and prefill/decode step execution timed by the
// analytical models of Appendix A.2.
//
// Engine methods are callback-based: they schedule virtual-time work and
// invoke completions, so instances (package core) can sequence scheduling
// decisions around them.
package engine

import (
	"fmt"
	"sort"
	"time"

	"aegaeon/internal/fault"
	"aegaeon/internal/fleetobs"
	"aegaeon/internal/gpu"
	"aegaeon/internal/kvcache"
	"aegaeon/internal/latency"
	"aegaeon/internal/memory"
	"aegaeon/internal/metrics"
	"aegaeon/internal/model"
	"aegaeon/internal/obs"
	"aegaeon/internal/sim"
)

// Options selects which Aegaeon auto-scaling optimizations are active.
// All-false reproduces the unoptimized T0 baseline of Fig. 7; enabling them
// cumulatively yields T1 (Fig. 8a), T2 (Fig. 8b), and T3 (Fig. 10).
type Options struct {
	// ComponentReuse (§5.1): initialize the distributed executor, profiling
	// results, pinned KV memory, tokenizers, and other engine components
	// once per instance and reuse them across models; model loading uses the
	// optimized stage-buffer path.
	ComponentReuse bool
	// ExplicitMemory (§5.2): self-managed bump-allocated VRAM buffer (no
	// garbage-collection pass on scale-down) and host model cache.
	ExplicitMemory bool
	// Prefetch (§5.2): load the next scheduled model into spare VRAM on a
	// separate stream, making its scale-up a cheap on-device copy.
	Prefetch bool
	// FineGrainedSync (§5.3): overlap KV-cache transfers with engine
	// reinitialization and inference using per-transfer events. Without it,
	// instances must drain transfers synchronously around every switch.
	FineGrainedSync bool
	// Colocate (§8, implemented future work): keep as many models resident
	// in the weights buffer as fit, evicting least-recently-used residents
	// only when a non-resident model needs the space. Switching between
	// resident models costs only an activation, incorporating multiplexing
	// into the SLO-aware scheduler. Implies ExplicitMemory-style instant
	// deallocation via a first-fit region allocator.
	Colocate bool
}

// AllOptimizations returns Aegaeon's full configuration (T3).
func AllOptimizations() Options {
	return Options{ComponentReuse: true, ExplicitMemory: true, Prefetch: true, FineGrainedSync: true}
}

// Unoptimized returns the default preemptive auto-scaling process (T0).
func Unoptimized() Options { return Options{} }

// Config parameterizes an engine instance.
type Config struct {
	Prof *latency.Profile
	TP   int
	Opts Options

	// VRAM split: the weights region of the self-managed buffer, and the
	// unified GPU KV cache region (Fig. 9).
	WeightsRegionBytes int64
	KVRegionBytes      int64
	KVSlabBytes        int64
	BlockTokens        int

	// Node-shared resources.
	ModelCache *memory.ModelCache
	CPUKV      *kvcache.Cache

	// RemoteLoadBPS is the bandwidth of the tier below the host model cache
	// (bytes/s). Default 6 GB/s: production nodes keep provisioned model
	// checkpoints on local NVMe (§2.3 — auto-scaling loads weights "from
	// host memory or SSDs"); a genuinely remote registry would be slower.
	RemoteLoadBPS float64

	// Move-list daemon poll interval (0 = reclaim on completion).
	DaemonPoll time.Duration

	// Obs receives device op timelines and switch-cost attribution. Nil
	// disables capture at zero overhead.
	Obs *obs.Collector

	// Fleet receives per-device GPU-second state accounting: engine
	// occupancy edges plus the host-side switch stages (reinit, gc-pause,
	// fetch, activate) that never touch a device engine. Nil disables
	// capture at zero overhead.
	Fleet *fleetobs.Ledger

	// Faults is the shared fault-injection state. Nil (the default) keeps
	// every fetch and transfer path byte-identical to a fault-free build.
	Faults *fault.Faults
}

// Stats aggregates engine activity.
type Stats struct {
	Switches      uint64
	PrefetchHits  uint64
	CacheMisses   uint64
	GCPauses      uint64
	Reinits       uint64
	PrefillJobs   uint64
	DecodeSteps   uint64
	SwitchLatency metrics.CDF // exposed scale-up latency per switch (Fig. 15)
	// Prefix-cache reuse activity (PR 6): copies charged instead of
	// recomputed prefill.
	PrefixReuses      uint64
	PrefixHostBytes   int64
	PrefixDeviceBytes int64
}

// Engine is one simulated inference engine.
type Engine struct {
	Name string

	eng *sim.Engine
	dev *gpu.Device
	cfg Config

	compute  *gpu.Stream
	loader   *gpu.Stream // weight H2D (stage-buffer path)
	prefetch *gpu.Stream // §5.2 prefetch stream

	weights *memory.BumpArena
	region  *memory.RegionAlloc // weights allocator under Colocate
	kv      *kvcache.Manager

	booted  bool
	current *model.Model
	costs   map[string]*latency.CostModel

	prefetched      *model.Model
	prefetchReady   *gpu.Event
	prefetchPending bool

	// Colocation state: resident models and their region offsets.
	residents map[string]*resident

	switching bool
	stats     Stats

	// throttle is the thermal-throttle slowdown on compute kernels (spot
	// marketplace capability degradation); 0 or 1 means nominal speed.
	throttle float64
}

// loadChunk bounds the duration of a single DMA operation for weight loads:
// the stage buffer streams weights in chunks (§5.2, "multi-threaded,
// chunked, and pipelined"), so concurrent KV-cache transfers interleave on
// the PCIe link instead of waiting behind a monolithic multi-GB copy.
const loadChunk = 25 * time.Millisecond

// submitChunked splits a long H2D transfer into loadChunk-sized operations
// and returns the event of the last chunk.
func submitChunked(st *gpu.Stream, total time.Duration, info gpu.OpInfo, done func()) *gpu.Event {
	if total <= loadChunk {
		return st.SubmitOp(gpu.H2D, total, info, done)
	}
	n := int(total / loadChunk)
	rem := total - time.Duration(n)*loadChunk
	for i := 0; i < n-1; i++ {
		st.SubmitOp(gpu.H2D, loadChunk, info)
	}
	last := loadChunk + rem
	return st.SubmitOp(gpu.H2D, last, info, done)
}

// New constructs an engine on a fresh device.
func New(se *sim.Engine, name string, cfg Config) *Engine {
	if cfg.TP < 1 {
		cfg.TP = 1
	}
	if cfg.BlockTokens <= 0 {
		cfg.BlockTokens = 16
	}
	if cfg.KVSlabBytes <= 0 {
		cfg.KVSlabBytes = 64 << 20
	}
	if cfg.RemoteLoadBPS <= 0 {
		cfg.RemoteLoadBPS = 6e9 // local NVMe tier
	}
	dev := gpu.NewDevice(se, name)
	e := &Engine{
		Name:     name,
		eng:      se,
		dev:      dev,
		cfg:      cfg,
		compute:  dev.NewStream("default"),
		loader:   dev.NewStream("loader"),
		prefetch: dev.NewStream("prefetch"),
		weights:  memory.NewBumpArena(cfg.WeightsRegionBytes),
		costs:    map[string]*latency.CostModel{},
	}
	if cfg.Opts.Colocate {
		e.region = memory.NewRegionAlloc(cfg.WeightsRegionBytes)
		e.residents = map[string]*resident{}
	}
	gpuKV := kvcache.NewCache(name+"/kv", cfg.KVRegionBytes, cfg.KVSlabBytes, cfg.BlockTokens)
	e.kv = kvcache.NewManager(dev, cfg.Prof, gpuKV, cfg.CPUKV, cfg.DaemonPoll)
	e.kv.SetFaults(cfg.Faults, name, cfg.Obs)
	e.kv.SetFleet(cfg.Fleet, name)
	cfg.Obs.ObserveDevice(dev)
	cfg.Fleet.ObserveDevice(dev)
	return e
}

// resident tracks one colocated model's placement in the weights region.
type resident struct {
	m        *model.Model
	off      int64
	size     int64
	lastUsed sim.Time
	loading  *gpu.Event // nil once fully loaded
}

// IsResident reports whether m's weights are (or are becoming) resident.
func (e *Engine) IsResident(m *model.Model) bool {
	if e.residents == nil {
		return e.current != nil && e.current.Name == m.Name
	}
	_, ok := e.residents[m.Name]
	return ok
}

// Residents returns the number of models currently resident (1 at most
// without Colocate).
func (e *Engine) Residents() int {
	if e.residents == nil {
		if e.current != nil {
			return 1
		}
		return 0
	}
	return len(e.residents)
}

// activationDelay is the cost of switching between two already-resident
// models under colocation: rebinding the execution context, no data motion.
const activationDelay = time.Millisecond

// switchColocated performs SwitchTo under the colocation policy.
func (e *Engine) switchColocated(m *model.Model, start sim.Time, done func()) {
	finish := func() {
		e.switching = false
		e.current = m
		if r := e.residents[m.Name]; r != nil {
			r.lastUsed = e.eng.Now()
		}
		e.stats.SwitchLatency.AddDuration(e.eng.Now() - start)
		e.cfg.Obs.EndSwitch(e.Name, e.eng.Now())
		done()
	}
	if r, ok := e.residents[m.Name]; ok {
		// Resident (possibly still streaming in): activate once loaded.
		run := func() {
			as := e.eng.Now()
			e.cfg.Fleet.Enter(e.Name, fleetobs.Activate, m.Name)
			e.eng.After(activationDelay, func() {
				e.cfg.Fleet.Exit(e.Name, fleetobs.Activate)
				e.cfg.Obs.SwitchStage(e.Name, "activate", as, e.eng.Now())
				finish()
			})
		}
		if r.loading != nil && !r.loading.Query() {
			e.stats.PrefetchHits++
			r.loading.OnComplete(run)
			return
		}
		e.stats.PrefetchHits++
		run()
		return
	}
	// Not resident: evict LRU residents until the shard fits (compacting
	// survivors with a cheap on-device copy when eviction alone leaves the
	// free space fragmented, as §5.2 does for prefetched models), then
	// stream it in.
	shard := m.ShardWeightBytes(e.cfg.TP)
	compactDur, err := e.makeRoomColocate(shard, m)
	if err != nil {
		panic(fmt.Sprintf("engine %s: %v", e.Name, err))
	}
	off, err := e.region.Alloc(shard)
	if err != nil {
		panic(fmt.Sprintf("engine %s: colocate alloc after eviction: %v", e.Name, err))
	}
	r := &resident{m: m, off: off, size: shard, lastUsed: e.eng.Now()}
	e.residents[m.Name] = r
	load := func() {
		submit := func() {
			var dur time.Duration
			if e.cfg.ModelCache == nil || e.cfg.ModelCache.Contains(m.Name) {
				dur = e.CostFor(m).Switch()
			} else {
				e.stats.CacheMisses++
				fetch := time.Duration(float64(m.WeightBytes()) / e.cfg.RemoteLoadBPS *
					float64(time.Second) * e.cfg.Faults.FetchFactor())
				_ = e.cfg.ModelCache.Insert(m.Name, m.WeightBytes())
				dur = e.CostFor(m).Switch() + fetch
			}
			ls := e.eng.Now()
			r.loading = submitChunked(e.loader, dur, gpu.OpInfo{Tag: "load " + m.Name, Model: m.Name}, func() {
				r.loading = nil
				e.cfg.Obs.SwitchStage(e.Name, "weight-load", ls, e.eng.Now())
				finish()
			})
		}
		if e.cfg.ModelCache != nil && !e.cfg.ModelCache.Contains(m.Name) {
			e.awaitFetchable(m, 0, submit)
		} else {
			submit()
		}
	}
	if compactDur > 0 {
		inner := load
		load = func() {
			cs := e.eng.Now()
			e.compute.SubmitOp(gpu.Compute, compactDur,
				gpu.OpInfo{Tag: "compact residents", Model: m.Name}, func() {
					e.cfg.Obs.SwitchStage(e.Name, "compact", cs, e.eng.Now())
					inner()
				})
		}
	}
	if !e.booted || !e.cfg.Opts.ComponentReuse {
		e.stats.Reinits++
		p := e.cfg.Prof
		reinitStart := e.eng.Now()
		e.cfg.Fleet.Enter(e.Name, fleetobs.Reinit, m.Name)
		e.eng.After(p.DistExecInit+p.ProfileOpt+p.KVInit+p.MiscInit, func() {
			e.booted = true
			e.cfg.Fleet.Exit(e.Name, fleetobs.Reinit)
			e.cfg.Obs.SwitchStage(e.Name, "reinit", reinitStart, e.eng.Now())
			load()
		})
		return
	}
	load()
}

// makeRoomColocate frees least-recently-used residents until size bytes
// fit. The target model, the current model, and residents with in-flight
// loads are never evicted. If eviction leaves enough total but fragmented
// space, the survivors are compacted; the returned duration is the
// on-device copy cost to charge (zero when no compaction was needed).
func (e *Engine) makeRoomColocate(size int64, keep *model.Model) (time.Duration, error) {
	for e.region.LargestFree() < size {
		var victim *resident
		for _, r := range e.residents {
			if r.m.Name == keep.Name || r.loading != nil {
				continue
			}
			if e.current != nil && r.m.Name == e.current.Name {
				continue
			}
			if victim == nil || r.lastUsed < victim.lastUsed ||
				(r.lastUsed == victim.lastUsed && r.m.Name < victim.m.Name) {
				victim = r
			}
		}
		if victim == nil {
			break // nothing more to evict; try compaction
		}
		if err := e.region.Free(victim.off); err != nil {
			return 0, err
		}
		delete(e.residents, victim.m.Name)
	}
	if e.region.LargestFree() >= size {
		return 0, nil
	}
	if e.region.FreeBytes() < size {
		return 0, fmt.Errorf("colocate: cannot fit %d bytes for %s: %d free after eviction",
			size, keep.Name, e.region.FreeBytes())
	}
	// Compact: survivors with in-flight loads cannot move.
	var moved int64
	for _, r := range e.residents {
		if r.loading != nil {
			return 0, fmt.Errorf("colocate: cannot compact around in-flight load of %s", r.m.Name)
		}
		moved += r.size
	}
	// Rebuild placements contiguously from offset zero.
	survivors := make([]*resident, 0, len(e.residents))
	for _, r := range e.residents {
		survivors = append(survivors, r)
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].off < survivors[j].off })
	for _, r := range survivors {
		if err := e.region.Free(r.off); err != nil {
			return 0, err
		}
	}
	for _, r := range survivors {
		off, err := e.region.Alloc(r.size)
		if err != nil {
			return 0, err
		}
		r.off = off
	}
	return e.CostFor(keep).OnDeviceCopy(moved), nil
}

// WarmBoot marks the engine's persistent components (distributed executor,
// profiling results, pinned KV memory, tokenizers) as already initialized —
// the state of a long-running production instance. §5.1: Aegaeon performs
// relevant profiling and caches tokenizers beforehand.
func (e *Engine) WarmBoot() { e.booted = true }

// KV returns the engine's KV transfer manager.
func (e *Engine) KV() *kvcache.Manager { return e.kv }

// Device returns the underlying simulated device.
func (e *Engine) Device() *gpu.Device { return e.dev }

// Sim returns the simulation engine.
func (e *Engine) Sim() *sim.Engine { return e.eng }

// Options returns the active optimization set.
func (e *Engine) Options() Options { return e.cfg.Opts }

// Current returns the currently loaded model (nil if none).
func (e *Engine) Current() *model.Model { return e.current }

// Stats returns a pointer to the engine's counters (live view).
func (e *Engine) Stats() *Stats { return &e.stats }

// CostFor returns the (cached) cost model for m on this engine's hardware.
func (e *Engine) CostFor(m *model.Model) *latency.CostModel {
	c, ok := e.costs[m.Name]
	if !ok {
		c = latency.NewCostModel(e.cfg.Prof, m, e.cfg.TP)
		e.costs[m.Name] = c
	}
	return c
}

// SwitchEstimate returns the scheduler's model-switch latency estimate
// (Appendix A.2, Eq. 4), including reinitialization when components are not
// reused. The estimate ignores prefetch (the scheduler treats prefetch wins
// as bonus).
func (e *Engine) SwitchEstimate(m *model.Model) time.Duration {
	if e.current != nil && e.current.Name == m.Name {
		return 0
	}
	return e.SwitchCost(m)
}

// SwitchCost returns the Eq. 4-based cost of scaling up m on this engine,
// regardless of what is currently resident. Algorithm 2's quota formula
// uses it as the per-model auto-scaling overhead c.
func (e *Engine) SwitchCost(m *model.Model) time.Duration {
	cost := e.CostFor(m)
	if !e.cfg.Opts.ComponentReuse {
		d := cost.NaiveInit()
		if !e.cfg.Opts.ExplicitMemory {
			d += e.cfg.Prof.GCPause
		}
		return d
	}
	d := cost.Switch()
	if !e.cfg.Opts.ExplicitMemory {
		d += e.cfg.Prof.GCPause
	}
	return d
}

// EffectiveSwitchCost returns the auto-scaling overhead a decode round
// should budget for scaling up m (Algorithm 2's per-model term in c): with
// prefetching available, consecutive turns hide the PCIe load and the
// exposed cost collapses to the on-device compaction copy; otherwise the
// full Eq. 4 load (plus reinit/GC per the options) is paid.
func (e *Engine) EffectiveSwitchCost(m *model.Model) time.Duration {
	if e.cfg.Opts.Colocate && e.IsResident(m) {
		return activationDelay
	}
	if e.cfg.Opts.Prefetch && e.weights.Capacity() >= 2*m.ShardWeightBytes(e.cfg.TP) {
		return e.CostFor(m).OnDeviceCopy(m.ShardWeightBytes(e.cfg.TP)) + 5*time.Millisecond
	}
	return e.SwitchCost(m)
}

// SwitchTo performs preemptive scale-up to m: unload the current model
// (instant bump reset, or a GC pause without explicit memory management),
// (re)initialize engine components as the options dictate, and load the new
// weights (prefetch hit, model-cache hit via the stage buffer, naive slow
// path, or remote registry fetch). done fires when inference for m may
// begin. Concurrent switches on one engine are a programming error.
func (e *Engine) SwitchTo(m *model.Model, done func()) {
	if e.switching {
		panic(fmt.Sprintf("engine %s: concurrent SwitchTo", e.Name))
	}
	if e.current != nil && e.current.Name == m.Name {
		done()
		return
	}
	e.switching = true
	start := e.eng.Now()
	e.stats.Switches++
	from := ""
	if e.current != nil {
		from = e.current.Name
	}
	e.cfg.Obs.BeginSwitch(e.Name, from, m.Name, start, e.booted && e.cfg.Opts.ComponentReuse)

	if e.cfg.Opts.Colocate {
		e.switchColocated(m, start, done)
		return
	}

	finish := func() {
		e.switching = false
		e.current = m
		e.stats.SwitchLatency.AddDuration(e.eng.Now() - start)
		e.cfg.Obs.EndSwitch(e.Name, e.eng.Now())
		done()
	}

	afterUnload := func() {
		if !e.booted || !e.cfg.Opts.ComponentReuse {
			// Full engine (re)initialization: distributed executor,
			// profiling, KV pinning, misc (Fig. 7).
			e.stats.Reinits++
			p := e.cfg.Prof
			reinit := p.DistExecInit + p.ProfileOpt + p.KVInit + p.MiscInit
			reinitStart := e.eng.Now()
			e.cfg.Fleet.Enter(e.Name, fleetobs.Reinit, m.Name)
			e.eng.After(reinit, func() {
				e.booted = true
				e.cfg.Fleet.Exit(e.Name, fleetobs.Reinit)
				e.cfg.Obs.SwitchStage(e.Name, "reinit", reinitStart, e.eng.Now())
				e.loadWeights(m, finish)
			})
			return
		}
		e.loadWeights(m, finish)
	}

	// Unload / scale-down of the resident weights.
	e.dropPrefetchIfStale(m)
	if e.current == nil {
		afterUnload()
		return
	}
	if e.cfg.Opts.ExplicitMemory {
		// O(1) bump reset — the prefetched copy (if for m) survives
		// logically: we model compaction as an on-device copy below.
		e.weights.Reset()
		afterUnload()
		return
	}
	// Tensor-library path: a garbage collection pass reclaims VRAM.
	e.stats.GCPauses++
	e.weights.Reset()
	gcStart := e.eng.Now()
	e.cfg.Fleet.Enter(e.Name, fleetobs.GCPause, m.Name)
	e.eng.After(e.cfg.Prof.GCPause, func() {
		e.cfg.Fleet.Exit(e.Name, fleetobs.GCPause)
		e.cfg.Obs.SwitchStage(e.Name, "gc-pause", gcStart, e.eng.Now())
		afterUnload()
	})
}

// loadWeights brings m's weights into VRAM and calls done.
func (e *Engine) loadWeights(m *model.Model, done func()) {
	cost := e.CostFor(m)
	shard := m.ShardWeightBytes(e.cfg.TP)

	// Prefetch hit: the weights are already on the device; compact them to
	// the start of the buffer with a cheap on-device copy (§5.2 step 3.b).
	if e.cfg.Opts.Prefetch && e.prefetched != nil && e.prefetched.Name == m.Name {
		ready := e.prefetchReady
		e.prefetched = nil
		e.prefetchReady = nil
		e.stats.PrefetchHits++
		copyDur := cost.OnDeviceCopy(shard)
		run := func() {
			if _, err := e.weights.Alloc(shard, 256); err != nil {
				panic(fmt.Sprintf("engine %s: weights region cannot hold compacted model: %v", e.Name, err))
			}
			cs := e.eng.Now()
			e.compute.SubmitOp(gpu.Compute, copyDur,
				gpu.OpInfo{Tag: "compact " + m.Name, Model: m.Name}, func() {
					e.cfg.Obs.SwitchStage(e.Name, "compact", cs, e.eng.Now())
					done()
				})
		}
		if ready.Query() {
			run()
		} else {
			ready.OnComplete(run)
		}
		return
	}

	if _, err := e.weights.Alloc(shard, 256); err != nil {
		panic(fmt.Sprintf("engine %s: weights region too small for %s: %v", e.Name, m.Name, err))
	}

	loadFromHost := func() {
		var dur time.Duration
		if e.cfg.Opts.ComponentReuse {
			// Optimized multi-threaded, chunked, pipelined stage-buffer copy
			// (§5.2): achieves the Eq. 4 β-derated PCIe bandwidth.
			dur = cost.Switch()
		} else {
			// Naive engine loading path (Fig. 7: 2.83 GB/s).
			dur = cost.NaiveLoad()
		}
		ls := e.eng.Now()
		submitChunked(e.loader, dur, gpu.OpInfo{Tag: "load " + m.Name, Model: m.Name}, func() {
			e.cfg.Obs.SwitchStage(e.Name, "weight-load", ls, e.eng.Now())
			done()
		})
	}

	if e.cfg.ModelCache != nil {
		if e.cfg.ModelCache.Contains(m.Name) {
			loadFromHost()
			return
		}
		// Remote registry fetch, then cached in host memory.
		e.stats.CacheMisses++
		e.fetchRemote(m, 0, loadFromHost)
		return
	}
	loadFromHost()
}

// fetchRemote pulls m's weights from the tier below the host model cache and
// fires done once they are cached. Injected fetch failures retry with
// jittered exponential backoff; when the bounded attempt budget is exhausted
// the counter is recorded and the budget re-arms after one more backoff —
// a switch must eventually make progress, never wedge the instance. Injected
// slowdowns multiply the transfer time. With no fault state attached the
// timing is identical to a fault-free build.
func (e *Engine) fetchRemote(m *model.Model, attempt int, done func()) {
	e.awaitFetchable(m, attempt, func() {
		fetch := time.Duration(float64(m.WeightBytes()) / e.cfg.RemoteLoadBPS *
			float64(time.Second) * e.cfg.Faults.FetchFactor())
		fs := e.eng.Now()
		e.cfg.Fleet.Enter(e.Name, fleetobs.Fetch, m.Name)
		e.eng.After(fetch, func() {
			e.cfg.Fleet.Exit(e.Name, fleetobs.Fetch)
			e.cfg.Obs.SwitchStage(e.Name, "fetch", fs, e.eng.Now())
			// A full cache is tolerable: the fetched weights stream through
			// the stage buffer regardless; only future hits are lost.
			_ = e.cfg.ModelCache.Insert(m.Name, m.WeightBytes())
			done()
		})
	})
}

// awaitFetchable delays then with jittered backoff while remote fetches of m
// are failing; with no active fault window (in particular with nil fault
// state) it calls then synchronously.
func (e *Engine) awaitFetchable(m *model.Model, attempt int, then func()) {
	f := e.cfg.Faults
	if !f.FetchFailing(m.Name) {
		then()
		return
	}
	f.CountFetchFailure()
	e.cfg.Obs.Fault(e.Name, "fetchfail", m.Name, e.eng.Now())
	next := attempt + 1
	if next >= f.MaxAttempts() {
		f.CountFetchExhausted()
		next = 0
	}
	delay := f.RetryDelay(attempt)
	f.CountFetchRetry()
	e.cfg.Obs.Retry(e.Name, "fetch "+m.Name, e.eng.Now())
	e.eng.After(delay, func() { e.awaitFetchable(m, next, then) })
}

// dropPrefetchIfStale discards a prefetched model that is not the switch
// target (its arena space is reclaimed by the imminent reset).
func (e *Engine) dropPrefetchIfStale(target *model.Model) {
	if e.prefetched != nil && e.prefetched.Name != target.Name {
		e.prefetched = nil
		e.prefetchReady = nil
	}
}

// StartPrefetch begins loading m into spare weights-region VRAM on the
// prefetch stream (§5.2), if the options allow, space suffices, and no
// prefetch is already pending. Returns true if a prefetch was started or is
// already in flight for m.
func (e *Engine) StartPrefetch(m *model.Model) bool {
	if e.cfg.Opts.Colocate {
		return e.prefetchColocated(m)
	}
	if !e.cfg.Opts.Prefetch || e.switching {
		return false
	}
	if e.current != nil && e.current.Name == m.Name {
		return false
	}
	if e.prefetched != nil {
		return e.prefetched.Name == m.Name
	}
	if e.prefetchPending {
		return false
	}
	if e.cfg.ModelCache != nil && !e.cfg.ModelCache.Contains(m.Name) && e.cfg.Faults.FetchFailing(m.Name) {
		return false // prefetch is opportunistic: skip while the registry is down
	}
	shard := m.ShardWeightBytes(e.cfg.TP)
	if e.weights.Free() < shard {
		return false // e.g. A10: no room for a second model (§7.4)
	}
	if _, err := e.weights.Alloc(shard, 256); err != nil {
		return false
	}
	var dur time.Duration
	if e.cfg.ModelCache == nil || e.cfg.ModelCache.Contains(m.Name) {
		dur = e.CostFor(m).Switch()
	} else {
		e.stats.CacheMisses++
		dur = e.CostFor(m).Switch() +
			time.Duration(float64(m.WeightBytes())/e.cfg.RemoteLoadBPS*float64(time.Second)*e.cfg.Faults.FetchFactor())
		_ = e.cfg.ModelCache.Insert(m.Name, m.WeightBytes())
	}
	e.prefetchPending = true
	e.prefetchReady = submitChunked(e.prefetch, dur,
		gpu.OpInfo{Tag: "prefetch " + m.Name, Model: m.Name}, func() {
			e.prefetchPending = false
		})
	e.prefetched = m
	return true
}

// prefetchColocated pre-loads m as a resident if the region has room
// without evicting anything (prefetch must never displace hotter models).
func (e *Engine) prefetchColocated(m *model.Model) bool {
	if !e.cfg.Opts.Prefetch || e.switching {
		return false
	}
	if _, ok := e.residents[m.Name]; ok {
		return true
	}
	if e.cfg.ModelCache != nil && !e.cfg.ModelCache.Contains(m.Name) && e.cfg.Faults.FetchFailing(m.Name) {
		return false // prefetch is opportunistic: skip while the registry is down
	}
	shard := m.ShardWeightBytes(e.cfg.TP)
	if e.region.LargestFree() < shard {
		return false
	}
	off, err := e.region.Alloc(shard)
	if err != nil {
		return false
	}
	r := &resident{m: m, off: off, size: shard, lastUsed: e.eng.Now()}
	e.residents[m.Name] = r
	var dur time.Duration
	if e.cfg.ModelCache == nil || e.cfg.ModelCache.Contains(m.Name) {
		dur = e.CostFor(m).Switch()
	} else {
		e.stats.CacheMisses++
		dur = e.CostFor(m).Switch() +
			time.Duration(float64(m.WeightBytes())/e.cfg.RemoteLoadBPS*float64(time.Second)*e.cfg.Faults.FetchFactor())
		_ = e.cfg.ModelCache.Insert(m.Name, m.WeightBytes())
	}
	r.loading = submitChunked(e.prefetch, dur,
		gpu.OpInfo{Tag: "prefetch " + m.Name, Model: m.Name}, func() {
			r.loading = nil
		})
	return true
}

// Prefetched returns the model currently prefetched (nil if none).
func (e *Engine) Prefetched() *model.Model { return e.prefetched }

// Prefill executes one prefill job (batch size 1, §4.2) for the current
// model and fires done on completion.
func (e *Engine) Prefill(promptTokens int, done func()) {
	e.PrefillFor("", promptTokens, done)
}

// PrefillFor is Prefill with request attribution: the compute op carries the
// request id so the device timeline links kernels to requests.
func (e *Engine) PrefillFor(reqID string, promptTokens int, done func()) {
	if e.current == nil {
		panic("engine: Prefill with no model loaded")
	}
	e.stats.PrefillJobs++
	dur := e.throttled(e.CostFor(e.current).Prefill(promptTokens))
	e.compute.SubmitOp(gpu.Compute, dur,
		gpu.OpInfo{Tag: "prefill", Model: e.current.Name, Request: reqID}, done)
}

// ReusePrefix charges the tier-dependent cost of materializing a cached
// prefix into a fresh sequence instead of recomputing it: hostBytes travel
// over PCIe (host tier → VRAM, on the loader stream so it overlaps compute),
// deviceBytes are an on-device copy from the instance's resident prefix
// blocks. done fires when the KV is in place and the (shortened) prefill may
// start.
func (e *Engine) ReusePrefix(reqID string, hostBytes, deviceBytes int64, done func()) {
	if e.current == nil {
		panic("engine: ReusePrefix with no model loaded")
	}
	e.stats.PrefixReuses++
	e.stats.PrefixHostBytes += hostBytes
	e.stats.PrefixDeviceBytes += deviceBytes
	dur := e.cfg.Prof.PCIeCopy(hostBytes) + e.CostFor(e.current).OnDeviceCopy(deviceBytes)
	e.loader.SubmitOp(gpu.H2D, dur,
		gpu.OpInfo{Tag: "prefix-reuse", Model: e.current.Name, Request: reqID}, done)
}

// DecodeStep executes one decoding iteration over a batch with the given
// total context tokens and fires done on completion.
func (e *Engine) DecodeStep(contextTokens int64, done func()) {
	if e.current == nil {
		panic("engine: DecodeStep with no model loaded")
	}
	e.stats.DecodeSteps++
	dur := e.throttled(e.CostFor(e.current).DecodeStep(contextTokens))
	e.compute.SubmitOp(gpu.Compute, dur,
		gpu.OpInfo{Tag: "decode", Model: e.current.Name}, done)
}

// SetThrottle sets the thermal-throttle slowdown applied to compute kernels
// (factor > 1 = slower; <= 1 restores nominal speed). Estimates are left
// unthrottled on purpose: schedulers plan against nominal capability, the
// market's capability score is what steers work away from hot devices.
func (e *Engine) SetThrottle(factor float64) {
	if factor < 1 {
		factor = 0
	}
	e.throttle = factor
}

// throttled scales a compute duration by the live throttle factor.
func (e *Engine) throttled(d time.Duration) time.Duration {
	if e.throttle > 1 {
		return time.Duration(float64(d) * e.throttle)
	}
	return d
}

// DecodeStepEstimate returns the t_k of Eq. 2 for a batch of the model with
// the given context size.
func (e *Engine) DecodeStepEstimate(m *model.Model, contextTokens int64) time.Duration {
	return e.CostFor(m).DecodeStep(contextTokens)
}

// PrefillEstimate returns the Eq. 5 estimate used for queue loads.
func (e *Engine) PrefillEstimate(m *model.Model, promptTokens int) time.Duration {
	return e.CostFor(m).Prefill(promptTokens)
}
