package engine

import (
	"testing"
	"time"

	"aegaeon/internal/fault"
	"aegaeon/internal/latency"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
)

// faultEngine builds an engine with fault state attached and a cold model
// cache, so every first switch takes the registry-fetch path.
func faultEngine(h *harness, f *fault.Faults, opts Options) *Engine {
	return New(h.sim, "gpu0", Config{
		Prof:               latency.H800(),
		TP:                 1,
		Opts:               opts,
		WeightsRegionBytes: 60 << 30,
		KVRegionBytes:      16 << 30,
		ModelCache:         h.cache,
		CPUKV:              h.cpuKV,
		Faults:             f,
	})
}

// A fetch-failure window covering the switch start must delay the fetch with
// backed-off retries until the window closes, then complete normally.
func TestFetchRetryRecoversAfterWindow(t *testing.T) {
	h := newHarness()
	f := fault.New(h.sim, 7)
	e := faultEngine(h, f, Options{ComponentReuse: true, ExplicitMemory: true})
	m7 := mustModel(t, "Qwen-7B")
	// First-boot reinit runs ~17.7s before the fetch path; the window must
	// still be open when the first fetch attempt lands.
	const window = 20 * time.Second
	f.FailFetch(m7.Name, window)

	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()

	if done == 0 {
		t.Fatal("switch never completed")
	}
	fetch := time.Duration(float64(m7.WeightBytes()) / 6e9 * float64(time.Second))
	if done < window+fetch {
		t.Fatalf("switch done at %v, want >= window(%v)+fetch(%v)", done, window, fetch)
	}
	st := f.Snapshot()
	if st.FetchFailures == 0 || st.FetchRetries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	if st.FetchRetries != st.FetchFailures {
		t.Fatalf("every failure must schedule a retry: %+v", st)
	}
	if e.Stats().CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (retries must not re-count)", e.Stats().CacheMisses)
	}
	if !h.cache.Peek(m7.Name) {
		t.Fatal("fetched model not inserted into cache after recovery")
	}
}

// An exhausted retry budget must not wedge the switch: the attempt counter
// re-arms (cool-down) and the fetch still lands once the window closes.
func TestFetchRetryExhaustionRearms(t *testing.T) {
	h := newHarness()
	f := fault.New(h.sim, 7)
	e := faultEngine(h, f, Options{ComponentReuse: true, ExplicitMemory: true})
	m7 := mustModel(t, "Qwen-7B")
	// Window long enough to burn through MaxAttempts (default backoff sums
	// to ~3.15s for 6 attempts) at least once after the ~17.7s reinit.
	const window = 30 * time.Second
	f.FailFetch(m7.Name, window)

	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()

	if done == 0 {
		t.Fatal("switch wedged after retry exhaustion")
	}
	st := f.Snapshot()
	if st.FetchExhausted == 0 {
		t.Fatalf("expected at least one exhaustion in a 10s window: %+v", st)
	}
	if done < window {
		t.Fatalf("switch done at %v, inside the failure window", done)
	}
}

// A fetch slowdown multiplies only the registry-fetch component.
func TestFetchSlowdownStretchesFetch(t *testing.T) {
	h := newHarness()
	f := fault.New(h.sim, 7)
	e := faultEngine(h, f, Options{ComponentReuse: true, ExplicitMemory: true})
	m7 := mustModel(t, "Qwen-7B")
	f.SlowFetch(4, time.Hour)

	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()

	fetch := time.Duration(float64(m7.WeightBytes()) / 6e9 * float64(time.Second))
	cost := latency.NewCostModel(latency.H800(), m7, 1)
	minWant := 4*fetch + cost.Switch()
	if done < minWant {
		t.Fatalf("slowed cold switch took %v, want >= %v (4x fetch)", done, minWant)
	}
}

// Prefetch is opportunistic: while the registry is failing for a model that
// is not in the host cache, StartPrefetch must decline rather than queue a
// doomed fetch.
func TestPrefetchDeclinedDuringFetchFailure(t *testing.T) {
	h := newHarness()
	f := fault.New(h.sim, 7)
	e := faultEngine(h, f, Options{ComponentReuse: true, ExplicitMemory: true, Prefetch: true})
	m13 := mustModel(t, "LLaMA-13B")
	mustWarm(h, "Qwen-7B")
	e.SwitchTo(mustModel(t, "Qwen-7B"), func() {})
	h.sim.Run()

	f.FailFetch(m13.Name, time.Second)
	if e.StartPrefetch(m13) {
		t.Fatal("prefetch accepted while registry fetch failing")
	}
	// After the window closes the same prefetch is accepted.
	h.sim.After(2*time.Second, func() {
		if !e.StartPrefetch(m13) {
			t.Error("prefetch declined after failure window closed")
		}
	})
	h.sim.Run()
}

func mustWarm(h *harness, name string) {
	mm, err := model.ByName(name)
	if err != nil {
		panic(err)
	}
	if err := h.cache.Insert(mm.Name, mm.WeightBytes()); err != nil {
		panic(err)
	}
}

// The colocated switch path must take the same retry gate.
func TestColocatedFetchRetry(t *testing.T) {
	h := newHarness()
	f := fault.New(h.sim, 7)
	e := faultEngine(h, f, Options{ComponentReuse: true, ExplicitMemory: true, Colocate: true})
	m7 := mustModel(t, "Qwen-7B")
	const window = 20 * time.Second // past the ~17.7s first-boot reinit
	f.FailFetch("*", window)        // wildcard target covers every model

	var done sim.Time
	e.SwitchTo(m7, func() { done = h.sim.Now() })
	h.sim.Run()

	if done == 0 {
		t.Fatal("colocated switch never completed")
	}
	if done < window {
		t.Fatalf("colocated switch done at %v, inside the failure window", done)
	}
	if f.Snapshot().FetchRetries == 0 {
		t.Fatal("colocated miss path bypassed the retry gate")
	}
}
