package baselines

import (
	"math/rand"
	"testing"
	"time"

	"aegaeon/internal/latency"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

func marketTrace(seed int64, models []*model.Model, rps float64, horizon time.Duration) []workload.Request {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return workload.PoissonTrace(rng, names, rps, horizon, workload.ShareGPT())
}

func runServer(t *testing.T, se *sim.Engine, s Server, trace []workload.Request) {
	t.Helper()
	if err := s.Submit(trace); err != nil {
		t.Fatal(err)
	}
	se.Run()
	s.Finalize(se.Now())
}

func TestSLLMSingleModel(t *testing.T) {
	models := model.MarketMix(1)
	trace := marketTrace(1, models, 0.5, 120*time.Second)
	se := sim.NewEngine(1)
	s := NewSLLM(se, SLLMConfig{
		Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(),
	})
	runServer(t, se, s, trace)
	if s.Completed() != len(trace) {
		t.Fatalf("completed %d/%d", s.Completed(), len(trace))
	}
	if att := s.Attainment(); att < 0.95 {
		t.Fatalf("single-model SLLM attainment = %.3f", att)
	}
}

// §3.1: with many models per GPU, request-level scaling suffers HOL
// blocking — attainment collapses well before Aegaeon's regime.
func TestSLLMHOLBlocking(t *testing.T) {
	models := model.MarketMix(8)
	trace := marketTrace(2, models, 0.1, 240*time.Second)
	se := sim.NewEngine(1)
	s := NewSLLM(se, SLLMConfig{
		Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(),
	})
	runServer(t, se, s, trace)
	if att := s.Attainment(); att > 0.9 {
		t.Fatalf("SLLM with 4 models/GPU attained %.3f — HOL blocking should bite", att)
	}
	if s.Completed() == 0 {
		t.Fatal("nothing completed")
	}
}

func TestSLLMPlusSJFOrdersQueue(t *testing.T) {
	models := model.MarketMix(6)
	trace := marketTrace(3, models, 0.15, 180*time.Second)
	run := func(sjf bool) float64 {
		se := sim.NewEngine(1)
		s := NewSLLM(se, SLLMConfig{
			Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(), SJF: sjf,
		})
		runServer(t, se, s, trace)
		return s.Attainment()
	}
	plain := run(false)
	sjf := run(true)
	// §7.2: SJF can help at low rates but is not uniformly better; both
	// must at least produce sane attainments.
	for _, v := range []float64{plain, sjf} {
		if v < 0 || v > 1 {
			t.Fatalf("attainment out of range: plain=%.3f sjf=%.3f", plain, sjf)
		}
	}
}

func TestMuxPlacementLimit(t *testing.T) {
	// §7.2: MuxServe's placement refuses more than two ~14B models per
	// 80 GB GPU; with 16 GPUs it serves at most 32 models.
	models := model.MarketMix(48)
	se := sim.NewEngine(1)
	s := NewMux(se, MuxConfig{
		Prof: latency.H800(), GPUs: 16, Models: models, SLO: slo.Default(),
	})
	if got := s.MaxModelsPerGPU(); got > 3 {
		t.Fatalf("MuxServe placed %d models on one GPU; memory should forbid it", got)
	}
	if got := s.PlacedModels(); got > 34 {
		t.Fatalf("MuxServe placed %d of 48 models; paper caps at ~32", got)
	}
	if got := s.PlacedModels(); got < 16 {
		t.Fatalf("MuxServe placed only %d models", got)
	}
}

func TestMuxRejectedRequestsViolate(t *testing.T) {
	models := model.MarketMix(8)
	se := sim.NewEngine(1)
	s := NewMux(se, MuxConfig{
		Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default(),
	})
	trace := marketTrace(4, models, 0.1, 120*time.Second)
	runServer(t, se, s, trace)
	if s.Rejected() == 0 {
		t.Fatal("no rejections despite 8 models on 1 GPU")
	}
	if att := s.Attainment(); att > 0.8 {
		t.Fatalf("attainment %.3f too high given %d rejected requests", att, s.Rejected())
	}
}

func TestMuxServesPlacedModelsWell(t *testing.T) {
	models := model.MarketMix(2) // fits on one GPU? 2 x ~15 GB -> yes
	se := sim.NewEngine(1)
	s := NewMux(se, MuxConfig{
		Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default(),
	})
	if s.PlacedModels() != 2 {
		t.Fatalf("placed %d of 2 small models", s.PlacedModels())
	}
	trace := marketTrace(5, models, 0.1, 120*time.Second)
	runServer(t, se, s, trace)
	if s.Completed() != len(trace) {
		t.Fatalf("completed %d/%d", s.Completed(), len(trace))
	}
	// No switching cost at all: multiplexing is strong at low colocation.
	if att := s.Attainment(); att < 0.9 {
		t.Fatalf("Mux attainment with 2 placed models = %.3f", att)
	}
}

func TestUnifiedModesServe(t *testing.T) {
	models := model.MarketMix(3)
	trace := marketTrace(6, models, 0.1, 120*time.Second)
	for _, mode := range []UnifiedMode{PrefillFirst, DecodeFirst} {
		se := sim.NewEngine(1)
		s := NewUnified(se, UnifiedConfig{
			Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(), Mode: mode,
		})
		runServer(t, se, s, trace)
		if s.Completed() != len(trace) {
			t.Fatalf("%v completed %d/%d", mode, s.Completed(), len(trace))
		}
		if att := s.Attainment(); att <= 0 || att > 1 {
			t.Fatalf("%v attainment = %.3f", mode, att)
		}
	}
}

// Fig. 6(b): decoding-first scheduling compromises TTFT when inputs are
// long — its mean TTFT must exceed prefill-first's under an ix2-style load.
func TestDecodeFirstHurtsTTFT(t *testing.T) {
	models := model.MarketMix(3)
	rng := rand.New(rand.NewSource(7))
	names := []string{models[0].Name, models[1].Name, models[2].Name}
	trace := workload.PoissonTrace(rng, names, 0.15, 180*time.Second, workload.ShareGPTIx2())
	meanTTFT := func(mode UnifiedMode) time.Duration {
		se := sim.NewEngine(1)
		s := NewUnified(se, UnifiedConfig{
			Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(), Mode: mode,
		})
		runServer(t, se, s, trace)
		return s.Tracker().MeanTTFT()
	}
	pf := meanTTFT(PrefillFirst)
	df := meanTTFT(DecodeFirst)
	if df <= pf {
		t.Fatalf("decode-first TTFT %v not worse than prefill-first %v", df, pf)
	}
}

func TestBaselineDeterminism(t *testing.T) {
	models := model.MarketMix(4)
	trace := marketTrace(8, models, 0.1, 120*time.Second)
	run := func() float64 {
		se := sim.NewEngine(1)
		s := NewSLLM(se, SLLMConfig{
			Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(),
		})
		runServer(t, se, s, trace)
		return s.Attainment()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic baseline: %.6f vs %.6f", a, b)
	}
}

func TestSubmitUnknownModelBaselines(t *testing.T) {
	models := model.MarketMix(1)
	bad := []workload.Request{{ID: "r0", Model: "ghost", OutputTokens: 1}}
	se := sim.NewEngine(1)
	if err := NewSLLM(se, SLLMConfig{Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default()}).Submit(bad); err == nil {
		t.Error("SLLM accepted unknown model")
	}
	if err := NewMux(se, MuxConfig{Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default()}).Submit(bad); err == nil {
		t.Error("Mux accepted unknown model")
	}
	if err := NewUnified(se, UnifiedConfig{Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default()}).Submit(bad); err == nil {
		t.Error("Unified accepted unknown model")
	}
}

// §7.2: ServerlessLLM+ (SJF) helps at low rates by dodging HOL blocking
// behind long jobs, but extra scaling churn means it is not uniformly
// better; at minimum it must differ measurably from plain FCFS under
// contention, and both must collapse at saturation.
func TestSJFChangesBehaviorUnderContention(t *testing.T) {
	models := model.MarketMix(10)
	trace := marketTrace(21, models, 0.2, 240*time.Second)
	run := func(sjf bool) (float64, int) {
		se := sim.NewEngine(1)
		s := NewSLLM(se, SLLMConfig{
			Prof: latency.H800(), GPUs: 2, Models: models, SLO: slo.Default(), SJF: sjf,
		})
		runServer(t, se, s, trace)
		return s.Attainment(), s.Completed()
	}
	plainAtt, plainDone := run(false)
	sjfAtt, sjfDone := run(true)
	if plainDone != len(trace) || sjfDone != len(trace) {
		t.Fatalf("incomplete: plain %d, sjf %d of %d", plainDone, sjfDone, len(trace))
	}
	if plainAtt == sjfAtt {
		t.Fatalf("SJF indistinguishable from FCFS under contention (both %.4f)", plainAtt)
	}
}

// MuxServe never switches models: its placed models' weights are resident
// for the lifetime of the deployment, so it pays zero scaling cost but
// serves only what fits.
func TestMuxTradeoffShape(t *testing.T) {
	few := model.MarketMix(2)
	many := model.MarketMix(20)
	run := func(models []*model.Model) (float64, int) {
		se := sim.NewEngine(1)
		s := NewMux(se, MuxConfig{Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default()})
		trace := marketTrace(22, models, 0.1, 120*time.Second)
		runServer(t, se, s, trace)
		return s.Attainment(), s.PlacedModels()
	}
	fewAtt, fewPlaced := run(few)
	manyAtt, manyPlaced := run(many)
	if fewPlaced != 2 {
		t.Fatalf("placed %d of 2", fewPlaced)
	}
	if manyPlaced > 3 {
		t.Fatalf("placed %d of 20 on one GPU", manyPlaced)
	}
	if fewAtt <= manyAtt {
		t.Fatalf("Mux attainment did not degrade with unplaceable models: %.3f vs %.3f",
			fewAtt, manyAtt)
	}
}

// Unified decode-slice parameter controls preemption granularity.
func TestUnifiedDecodeSliceConfigurable(t *testing.T) {
	models := model.MarketMix(3)
	trace := marketTrace(23, models, 0.1, 90*time.Second)
	se := sim.NewEngine(1)
	s := NewUnified(se, UnifiedConfig{
		Prof: latency.H800(), GPUs: 1, Models: models, SLO: slo.Default(),
		Mode: DecodeFirst, DecodeSlice: 100 * time.Millisecond,
	})
	runServer(t, se, s, trace)
	if s.Completed() != len(trace) {
		t.Fatalf("completed %d/%d", s.Completed(), len(trace))
	}
}
