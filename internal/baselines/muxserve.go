package baselines

import (
	"fmt"
	"sort"
	"time"

	"aegaeon/internal/latency"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

// MuxConfig parameterizes a MuxServe-style deployment.
type MuxConfig struct {
	Prof   *latency.Profile
	TP     int
	GPUs   int
	Models []*model.Model
	SLO    slo.SLO

	// MinKVBytesPerModel is the KV budget the placement optimizer reserves
	// for each colocated model (MuxServe refuses placements that starve a
	// model's KV cache and hence its throughput). The 12 GiB default
	// reproduces the paper's observation that at most two 6–14B FP16 models
	// share an 80 GB GPU (§2.3, §7.2).
	MinKVBytesPerModel int64
}

// Mux models MuxServe [20]: models are statically placed onto GPUs
// (weights permanently resident) and colocated models share each GPU
// spatially. There is no auto-scaling cost, but placement is hard-limited
// by VRAM — with ~14B FP16 models at most two fit per 80 GB GPU (§2.3), and
// models that cannot be placed are rejected outright, exactly as the
// paper's MuxServe placement optimizer refuses them (§7.2).
type Mux struct {
	eng *sim.Engine
	cfg MuxConfig

	gpus      []*muxGPU
	placement map[string]*muxModel // model name -> placed runtime (nil if rejected)
	requests  []*request
	tracker   *slo.Tracker
	completed int
	rejected  int
}

type muxGPU struct {
	sys    *Mux
	id     int
	models []*muxModel
	active int // colocated models currently executing (spatial contention)
}

type muxModel struct {
	gpu      *muxGPU
	m        *model.Model
	cost     *latency.CostModel
	kvLimit  int64 // tokens
	admitted []*request
	queue    []*request
	running  bool
}

// NewMux builds the deployment and runs placement.
func NewMux(se *sim.Engine, cfg MuxConfig) *Mux {
	if cfg.TP < 1 {
		cfg.TP = 1
	}
	if cfg.MinKVBytesPerModel <= 0 {
		cfg.MinKVBytesPerModel = 12 << 30
	}
	if cfg.GPUs < 1 {
		panic("baselines: Mux needs at least one GPU")
	}
	s := &Mux{eng: se, cfg: cfg, placement: map[string]*muxModel{}, tracker: slo.NewTracker()}
	for i := 0; i < cfg.GPUs; i++ {
		s.gpus = append(s.gpus, &muxGPU{sys: s, id: i})
	}
	s.place()
	return s
}

// place packs models onto GPUs first-fit-decreasing by weight size, subject
// to VRAM: Σ resident weights + MinKV per model ≤ usable VRAM.
func (s *Mux) place() {
	models := append([]*model.Model(nil), s.cfg.Models...)
	sort.SliceStable(models, func(i, j int) bool {
		return models[i].ShardWeightBytes(s.cfg.TP) > models[j].ShardWeightBytes(s.cfg.TP)
	})
	usable := int64(float64(s.cfg.Prof.VRAMBytes) * 0.9)
	used := make([]int64, len(s.gpus))
	for _, m := range models {
		shard := m.ShardWeightBytes(s.cfg.TP)
		placed := false
		for gi, g := range s.gpus {
			need := shard + s.cfg.MinKVBytesPerModel
			if used[gi]+need <= usable {
				used[gi] += need
				mm := &muxModel{
					gpu:  g,
					m:    m,
					cost: latency.NewCostModel(s.cfg.Prof, m, s.cfg.TP),
				}
				shape := m.ShardKVShape(s.cfg.TP)
				mm.kvLimit = s.cfg.MinKVBytesPerModel / shape.BytesPerToken()
				g.models = append(g.models, mm)
				s.placement[m.Name] = mm
				placed = true
				break
			}
		}
		if !placed {
			s.placement[m.Name] = nil // rejected by the placement optimizer
		}
	}
	// Distribute leftover VRAM as extra KV, proportionally per GPU.
	for gi, g := range s.gpus {
		if len(g.models) == 0 {
			continue
		}
		extra := (usable - used[gi]) / int64(len(g.models))
		if extra <= 0 {
			continue
		}
		for _, mm := range g.models {
			shape := mm.m.ShardKVShape(s.cfg.TP)
			mm.kvLimit += extra / shape.BytesPerToken()
		}
	}
}

// PlacedModels returns how many models the placement accepted.
func (s *Mux) PlacedModels() int {
	n := 0
	for _, mm := range s.placement {
		if mm != nil {
			n++
		}
	}
	return n
}

// MaxModelsPerGPU returns the largest colocation degree achieved.
func (s *Mux) MaxModelsPerGPU() int {
	max := 0
	for _, g := range s.gpus {
		if len(g.models) > max {
			max = len(g.models)
		}
	}
	return max
}

// Submit schedules the trace. Requests for unplaced models are rejected at
// arrival (they count as fully violated).
func (s *Mux) Submit(trace []workload.Request) error {
	for _, wr := range trace {
		mm, ok := s.placement[wr.Model]
		if !ok {
			return fmt.Errorf("baselines: unknown model %q", wr.Model)
		}
		r := &request{
			id: wr.ID, model: nil, arrival: wr.Arrival,
			inputTokens: wr.InputTokens, outputTokens: wr.OutputTokens,
		}
		if mm != nil {
			r.model = mm.m
		}
		s.requests = append(s.requests, r)
		if mm == nil {
			s.rejected++
			continue // never generates tokens; Finalize marks it violated
		}
		s.eng.At(wr.Arrival, func() { mm.arrive(r) })
	}
	return nil
}

func (mm *muxModel) arrive(r *request) {
	mm.queue = append(mm.queue, r)
	mm.admitFromQueue()
	mm.wake()
}

func (mm *muxModel) admitFromQueue() {
	var live int64
	for _, a := range mm.admitted {
		live += a.projectedTokens()
	}
	kept := mm.queue[:0]
	for _, r := range mm.queue {
		if live+r.projectedTokens() <= mm.kvLimit {
			live += r.projectedTokens()
			mm.admitted = append(mm.admitted, r)
		} else {
			kept = append(kept, r)
		}
	}
	mm.queue = kept
}

func (mm *muxModel) wake() {
	if mm.running || len(mm.admitted) == 0 {
		return
	}
	mm.running = true
	mm.gpu.active++
	mm.step()
}

// contention returns the spatial-sharing slowdown: with k colocated models
// executing concurrently under MPS, each receives roughly 1/k of the SMs.
func (g *muxGPU) contention() float64 {
	if g.active < 1 {
		return 1
	}
	return float64(g.active)
}

// step runs one continuous-batching iteration for this model's virtual
// engine, slowed by the GPU's current contention.
func (mm *muxModel) step() {
	if len(mm.admitted) == 0 {
		mm.running = false
		mm.gpu.active--
		return
	}
	g := mm.gpu
	for _, r := range mm.admitted {
		if !r.prefilled {
			r.prefilled = true
			dur := time.Duration(float64(mm.cost.Prefill(r.inputTokens)) * g.contention())
			g.sys.eng.After(dur, func() {
				r.tokenTimes = append(r.tokenTimes, g.sys.eng.Now())
				if r.outputTokens <= 1 {
					mm.finish(r)
				}
				mm.step()
			})
			return
		}
	}
	var ctx int64
	batch := make([]*request, 0, len(mm.admitted))
	for _, r := range mm.admitted {
		ctx += r.contextTokens()
		batch = append(batch, r)
	}
	dur := time.Duration(float64(mm.cost.DecodeStep(ctx)) * g.contention())
	g.sys.eng.After(dur, func() {
		now := g.sys.eng.Now()
		for _, r := range batch {
			r.tokenTimes = append(r.tokenTimes, now)
			if len(r.tokenTimes) >= r.outputTokens {
				mm.finish(r)
			}
		}
		mm.step()
	})
}

func (mm *muxModel) finish(r *request) {
	r.done = true
	mm.gpu.sys.completed++
	kept := mm.admitted[:0]
	for _, a := range mm.admitted {
		if !a.done {
			kept = append(kept, a)
		}
	}
	mm.admitted = kept
	mm.admitFromQueue()
}

// Finalize computes attainment (rejected requests count as violated).
func (s *Mux) Finalize(end sim.Time) {
	observeAll(s.tracker, s.cfg.SLO, s.requests, end)
}

// Attainment returns token-level SLO attainment.
func (s *Mux) Attainment() float64 { return s.tracker.Attainment() }

// Completed returns fully served requests.
func (s *Mux) Completed() int { return s.completed }

// Rejected returns requests refused because their model was not placed.
func (s *Mux) Rejected() int { return s.rejected }

// Tracker exposes the SLO tracker.
func (s *Mux) Tracker() *slo.Tracker { return s.tracker }

var _ Server = (*Mux)(nil)
