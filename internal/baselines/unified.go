package baselines

import (
	"fmt"
	"time"

	"aegaeon/internal/engine"
	"aegaeon/internal/latency"
	"aegaeon/internal/memory"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

// UnifiedMode selects the priority heuristic of a unified (non-
// disaggregated) token-level scheduler (Fig. 6).
type UnifiedMode int

const (
	// PrefillFirst always serves queued prefill jobs before decoding —
	// harming TBT under arrival bursts (Fig. 6a).
	PrefillFirst UnifiedMode = iota
	// DecodeFirst always advances decoding batches before prefills —
	// harming TTFT under long inputs (Fig. 6b).
	DecodeFirst
)

func (m UnifiedMode) String() string {
	if m == PrefillFirst {
		return "prefill-first"
	}
	return "decoding-first"
}

// UnifiedConfig parameterizes the unified scheduler.
type UnifiedConfig struct {
	Prof   *latency.Profile
	TP     int
	GPUs   int
	Models []*model.Model
	SLO    slo.SLO
	Mode   UnifiedMode

	// DecodeSlice is how long a decode batch runs before the scheduler
	// re-evaluates priorities (token-level granularity).
	DecodeSlice time.Duration
}

// Unified is the token-level but non-disaggregated scheduler used in §4.1
// to motivate prefill/decoding disaggregation: every GPU serves both
// phases, with a fixed priority between them. It shares Aegaeon's optimized
// auto-scaling (so the comparison isolates the scheduling policy) but not
// its KV-transfer machinery — switches charge the Eq. 4 weight load only,
// which favors the unified schedulers if anything.
type Unified struct {
	eng *sim.Engine
	cfg UnifiedConfig

	instances []*uInstance
	requests  []*request
	models    map[string]*model.Model
	tracker   *slo.Tracker
	completed int
}

type uInstance struct {
	sys *Unified
	eng *engine.Engine

	prefillQ []*request
	batches  map[string][]*request // decoding sets per model
	rotation []string              // round-robin order of models with decode work
	running  bool
}

// NewUnified builds the system.
func NewUnified(se *sim.Engine, cfg UnifiedConfig) *Unified {
	if cfg.TP < 1 {
		cfg.TP = 1
	}
	if cfg.GPUs < 1 {
		panic("baselines: Unified needs at least one GPU")
	}
	if cfg.DecodeSlice <= 0 {
		cfg.DecodeSlice = 500 * time.Millisecond
	}
	s := &Unified{eng: se, cfg: cfg, models: map[string]*model.Model{}, tracker: slo.NewTracker()}
	modelCache := memory.NewModelCache(1 << 40)
	cpuKV := newNodeCPUKV()
	var maxShard int64
	for _, m := range cfg.Models {
		s.models[m.Name] = m
		_ = modelCache.Insert(m.Name, m.WeightBytes())
		if sh := m.ShardWeightBytes(cfg.TP); sh > maxShard {
			maxShard = sh
		}
	}
	usable := int64(float64(cfg.Prof.VRAMBytes) * 0.9)
	weights := maxShard + maxShard/16
	for i := 0; i < cfg.GPUs; i++ {
		e := engine.New(se, fmt.Sprintf("unified%d", i), engine.Config{
			Prof:               cfg.Prof,
			TP:                 cfg.TP,
			Opts:               engine.Options{ComponentReuse: true, ExplicitMemory: true},
			WeightsRegionBytes: weights,
			KVRegionBytes:      usable - weights,
			ModelCache:         modelCache,
			CPUKV:              cpuKV,
		})
		e.WarmBoot()
		s.instances = append(s.instances, &uInstance{
			sys: s, eng: e, batches: map[string][]*request{},
		})
	}
	return s
}

// Submit schedules the trace.
func (s *Unified) Submit(trace []workload.Request) error {
	for _, wr := range trace {
		m, ok := s.models[wr.Model]
		if !ok {
			return fmt.Errorf("baselines: unknown model %q", wr.Model)
		}
		r := &request{
			id: wr.ID, model: m, arrival: wr.Arrival,
			inputTokens: wr.InputTokens, outputTokens: wr.OutputTokens,
		}
		s.requests = append(s.requests, r)
		s.eng.At(wr.Arrival, func() { s.dispatch(r) })
	}
	return nil
}

func (s *Unified) dispatch(r *request) {
	best := s.instances[0]
	bestLoad := best.load()
	for _, in := range s.instances[1:] {
		if l := in.load(); l < bestLoad {
			best, bestLoad = in, l
		}
	}
	best.prefillQ = append(best.prefillQ, r)
	best.wake()
}

func (in *uInstance) load() int {
	n := len(in.prefillQ)
	for _, b := range in.batches {
		n += len(b)
	}
	return n
}

func (in *uInstance) wake() {
	if in.running {
		return
	}
	in.running = true
	in.step()
}

// step picks the next token-generation work per the priority mode.
func (in *uInstance) step() {
	hasPrefill := len(in.prefillQ) > 0
	hasDecode := in.nextDecodeModel() != ""
	switch {
	case !hasPrefill && !hasDecode:
		in.running = false
	case in.sys.cfg.Mode == PrefillFirst && hasPrefill, !hasDecode:
		in.runPrefill()
	default:
		in.runDecodeSlice()
	}
}

func (in *uInstance) nextDecodeModel() string {
	for len(in.rotation) > 0 {
		m := in.rotation[0]
		if len(in.batches[m]) > 0 {
			return m
		}
		in.rotation = in.rotation[1:]
	}
	return ""
}

func (in *uInstance) runPrefill() {
	r := in.prefillQ[0]
	in.prefillQ = in.prefillQ[1:]
	exec := func() {
		in.eng.Prefill(r.inputTokens, func() {
			r.tokenTimes = append(r.tokenTimes, in.sys.eng.Now())
			if r.outputTokens <= 1 {
				r.done = true
				in.sys.completed++
			} else {
				if len(in.batches[r.model.Name]) == 0 {
					in.rotation = append(in.rotation, r.model.Name)
				}
				in.batches[r.model.Name] = append(in.batches[r.model.Name], r)
			}
			in.step()
		})
	}
	if cur := in.eng.Current(); cur == nil || cur.Name != r.model.Name {
		in.eng.SwitchTo(r.model, exec)
		return
	}
	exec()
}

// runDecodeSlice advances the head decode batch for one scheduler slice.
func (in *uInstance) runDecodeSlice() {
	mName := in.nextDecodeModel()
	m := in.sys.models[mName]
	run := func() {
		end := in.sys.eng.Now() + in.sys.cfg.DecodeSlice
		in.decodeUntil(mName, end)
	}
	if cur := in.eng.Current(); cur == nil || cur.Name != mName {
		in.eng.SwitchTo(m, run)
		return
	}
	run()
}

func (in *uInstance) decodeUntil(mName string, end sim.Time) {
	batch := in.batches[mName]
	if len(batch) == 0 || in.sys.eng.Now() >= end {
		// Rotate the model to the back and re-evaluate priorities.
		if len(in.rotation) > 0 && in.rotation[0] == mName {
			in.rotation = append(in.rotation[1:], mName)
		}
		in.step()
		return
	}
	// In prefill-first mode, a queued prefill preempts mid-slice — the
	// token-level granularity that causes TBT interference under bursts.
	if in.sys.cfg.Mode == PrefillFirst && len(in.prefillQ) > 0 {
		in.step()
		return
	}
	var ctx int64
	for _, r := range batch {
		ctx += r.contextTokens()
	}
	in.eng.DecodeStep(ctx, func() {
		now := in.sys.eng.Now()
		kept := batch[:0]
		for _, r := range batch {
			r.tokenTimes = append(r.tokenTimes, now)
			if len(r.tokenTimes) >= r.outputTokens {
				r.done = true
				in.sys.completed++
			} else {
				kept = append(kept, r)
			}
		}
		in.batches[mName] = kept
		in.decodeUntil(mName, end)
	})
}

// Finalize computes attainment.
func (s *Unified) Finalize(end sim.Time) {
	observeAll(s.tracker, s.cfg.SLO, s.requests, end)
}

// Attainment returns token-level SLO attainment.
func (s *Unified) Attainment() float64 { return s.tracker.Attainment() }

// Completed returns fully served requests.
func (s *Unified) Completed() int { return s.completed }

// Tracker exposes the SLO tracker.
func (s *Unified) Tracker() *slo.Tracker { return s.tracker }

var _ Server = (*Unified)(nil)
