package baselines

import (
	"fmt"
	"sort"

	"aegaeon/internal/engine"
	"aegaeon/internal/kvcache"
	"aegaeon/internal/latency"
	"aegaeon/internal/memory"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

// SLLMConfig parameterizes a ServerlessLLM-style deployment.
type SLLMConfig struct {
	Prof   *latency.Profile
	TP     int
	GPUs   int // unified instances (no prefill/decode disaggregation)
	Models []*model.Model
	SLO    slo.SLO

	// SJF enables the oracle shortest-job-first queue of ServerlessLLM+.
	SJF bool

	// KVHeadroom caps batch KV planning (default 0.9).
	KVHeadroom float64
}

// SLLM models ServerlessLLM [21]: serverless auto-scaling with fast
// checkpoint loading. We grant it an optimized load path and persistent
// engine components (its own contribution is cold-start speed), but not
// Aegaeon's explicit memory management: per §5.1–5.2, existing systems
// focus on model-loading acceleration and still pay the tensor library's
// garbage-collection pass when reclaiming VRAM between models. More
// fundamentally, its scaling decisions happen only at request granularity:
// an instance switches models only when it has drained, so queued requests
// for other models suffer head-of-line blocking (§3.1).
type SLLM struct {
	eng *sim.Engine
	cfg SLLMConfig

	instances []*sllmInstance
	queue     []*request // global queue of unassigned requests
	requests  []*request
	models    map[string]*model.Model
	tracker   *slo.Tracker
	completed int
	switchLat switchCDF
}

type sllmInstance struct {
	sys *SLLM
	eng *engine.Engine

	current    string // model being served ("" if idle)
	switching  bool
	admitted   []*request // requests assigned, prefilled or not
	running    bool
	kvLimit    int64
	kvPlanned  int64
	modelCache *memory.ModelCache
}

// NewSLLM builds the baseline system.
func NewSLLM(se *sim.Engine, cfg SLLMConfig) *SLLM {
	if cfg.TP < 1 {
		cfg.TP = 1
	}
	if cfg.KVHeadroom <= 0 || cfg.KVHeadroom > 1 {
		cfg.KVHeadroom = 0.9
	}
	if cfg.GPUs < 1 {
		panic("baselines: SLLM needs at least one GPU instance")
	}
	s := &SLLM{
		eng:     se,
		cfg:     cfg,
		models:  map[string]*model.Model{},
		tracker: slo.NewTracker(),
	}
	modelCache := memory.NewModelCache(1 << 40)
	cpuKV := newNodeCPUKV()
	var maxShard int64
	for _, m := range cfg.Models {
		s.models[m.Name] = m
		_ = modelCache.Insert(m.Name, m.WeightBytes())
		if sh := m.ShardWeightBytes(cfg.TP); sh > maxShard {
			maxShard = sh
		}
	}
	usable := int64(float64(cfg.Prof.VRAMBytes) * 0.9)
	weights := maxShard + maxShard/16
	kvRegion := usable - weights
	opts := engine.Options{ComponentReuse: true}
	for i := 0; i < cfg.GPUs; i++ {
		e := engine.New(se, fmt.Sprintf("sllm%d", i), engine.Config{
			Prof:               cfg.Prof,
			TP:                 cfg.TP,
			Opts:               opts,
			WeightsRegionBytes: weights,
			KVRegionBytes:      kvRegion,
			ModelCache:         modelCache,
			CPUKV:              cpuKV,
		})
		e.WarmBoot()
		s.instances = append(s.instances, &sllmInstance{sys: s, eng: e, modelCache: modelCache})
	}
	return s
}

// Submit schedules the trace.
func (s *SLLM) Submit(trace []workload.Request) error {
	for _, wr := range trace {
		m, ok := s.models[wr.Model]
		if !ok {
			return fmt.Errorf("baselines: unknown model %q", wr.Model)
		}
		r := &request{
			id: wr.ID, model: m, arrival: wr.Arrival,
			inputTokens: wr.InputTokens, outputTokens: wr.OutputTokens,
		}
		s.requests = append(s.requests, r)
		s.eng.At(wr.Arrival, func() { s.arrive(r) })
	}
	return nil
}

func (s *SLLM) arrive(r *request) {
	// Route to an instance already serving (or switching to) the model with
	// KV room — request-level systems do batch same-model requests.
	for _, in := range s.instances {
		if in.current == r.model.Name && in.hasRoom(r) {
			in.admit(r)
			return
		}
	}
	s.queue = append(s.queue, r)
	s.sortQueue()
	s.feedIdleInstances()
}

func (s *SLLM) sortQueue() {
	if !s.cfg.SJF {
		return
	}
	// ServerlessLLM+ oracle SJF: shortest remaining output first.
	sort.SliceStable(s.queue, func(i, j int) bool {
		return s.queue[i].outputTokens < s.queue[j].outputTokens
	})
}

// feedIdleInstances hands the queue head (and its same-model followers) to
// any drained instance. Scaling happens here — only at request boundaries.
func (s *SLLM) feedIdleInstances() {
	for _, in := range s.instances {
		if len(s.queue) == 0 {
			return
		}
		if in.idle() {
			head := s.queue[0]
			s.queue = s.queue[1:]
			in.scaleTo(head)
		}
	}
}

// takeQueued moves queued requests of the model onto the instance while KV
// room remains.
func (s *SLLM) takeQueued(in *sllmInstance, modelName string) {
	kept := s.queue[:0]
	for _, r := range s.queue {
		if r.model.Name == modelName && in.hasRoom(r) {
			in.admit(r)
		} else {
			kept = append(kept, r)
		}
	}
	s.queue = kept
}

func (in *sllmInstance) idle() bool {
	return !in.switching && len(in.admitted) == 0
}

func (in *sllmInstance) hasRoom(r *request) bool {
	return in.kvPlanned+r.projectedTokens() <= in.kvLimit
}

// scaleTo switches the instance to the request's model (the request-level
// auto-scaling action) and admits it plus any queued same-model requests.
func (in *sllmInstance) scaleTo(r *request) {
	in.switching = true
	in.current = r.model.Name
	shape := r.model.ShardKVShape(in.sys.cfg.TP)
	class, err := in.eng.KV().GPUCache.RegisterShape(shape)
	if err != nil {
		panic(err)
	}
	in.kvLimit = int64(float64(in.eng.KV().GPUCache.MaxTokens(class)) * in.sys.cfg.KVHeadroom)
	in.kvPlanned = 0
	in.admit(r)
	start := in.eng.Sim().Now()
	in.eng.SwitchTo(r.model, func() {
		in.sys.switchLat.AddDuration(in.eng.Sim().Now() - start)
		in.switching = false
		in.sys.takeQueued(in, in.current)
		in.wake()
	})
}

func (in *sllmInstance) admit(r *request) {
	in.admitted = append(in.admitted, r)
	in.kvPlanned += r.projectedTokens()
	in.wake()
}

func (in *sllmInstance) wake() {
	if in.running || in.switching {
		return
	}
	in.running = true
	in.step()
}

// step is a continuous-batching iteration: prefill one pending request if
// any (prefill-prioritized admission, as in vLLM), else run one decode step
// over all prefilled requests.
func (in *sllmInstance) step() {
	if len(in.admitted) == 0 {
		in.running = false
		in.current = ""
		in.sys.feedIdleInstances()
		return
	}
	// Prefill pending requests first.
	for _, r := range in.admitted {
		if !r.prefilled {
			in.runPrefill(r)
			return
		}
	}
	// Decode step over the whole batch.
	var ctx int64
	batch := make([]*request, 0, len(in.admitted))
	for _, r := range in.admitted {
		r.kvTokens++
		ctx += r.contextTokens()
		batch = append(batch, r)
	}
	in.eng.DecodeStep(ctx, func() {
		now := in.eng.Sim().Now()
		finished := false
		for _, r := range batch {
			r.tokenTimes = append(r.tokenTimes, now)
			if len(r.tokenTimes) >= r.outputTokens {
				r.done = true
				finished = true
				in.sys.completed++
			}
		}
		if finished {
			kept := in.admitted[:0]
			for _, r := range in.admitted {
				if !r.done {
					kept = append(kept, r)
				}
			}
			in.admitted = kept
			// Capacity freed: pull in queued same-model requests.
			in.sys.takeQueued(in, in.current)
		}
		in.step()
	})
}

func (in *sllmInstance) runPrefill(r *request) {
	r.prefilled = true
	r.kvTokens = int64(r.inputTokens + 1)
	in.eng.Prefill(r.inputTokens, func() {
		now := in.eng.Sim().Now()
		r.tokenTimes = append(r.tokenTimes, now)
		if r.outputTokens <= 1 {
			r.done = true
			in.sys.completed++
			kept := in.admitted[:0]
			for _, q := range in.admitted {
				if !q.done {
					kept = append(kept, q)
				}
			}
			in.admitted = kept
		}
		in.step()
	})
}

// Finalize computes attainment.
func (s *SLLM) Finalize(end sim.Time) {
	observeAll(s.tracker, s.cfg.SLO, s.requests, end)
}

// Attainment returns token-level SLO attainment.
func (s *SLLM) Attainment() float64 { return s.tracker.Attainment() }

// Completed returns fully served requests.
func (s *SLLM) Completed() int { return s.completed }

// Tracker exposes the SLO tracker.
func (s *SLLM) Tracker() *slo.Tracker { return s.tracker }

// SwitchLatencyCDF exposes exposed switch latencies.
func (s *SLLM) SwitchLatencyCDF() *switchCDF { return &s.switchLat }

// QueueLen returns the global unassigned-queue length (diagnostics).
func (s *SLLM) QueueLen() int { return len(s.queue) }

var _ Server = (*SLLM)(nil)

// newNodeCPUKV builds the host KV tier baselines hand to their engines (the
// request-level systems never swap KV, but the engine requires a tier).
func newNodeCPUKV() *kvcache.Cache {
	return kvcache.NewCache("cpu-kv", 640<<30, 64<<20, 16)
}
