// Package baselines implements the systems Aegaeon is evaluated against in
// §7: ServerlessLLM (request-level auto-scaling with fast model loading),
// ServerlessLLM+ (the paper's extension with oracle shortest-job-first
// scheduling), and MuxServe (static spatial multiplexing limited by GPU
// memory). It also provides the unified token-level schedulers of Fig. 6
// (prefill-first and decoding-first) used to motivate disaggregation.
package baselines

import (
	"time"

	"aegaeon/internal/metrics"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

// Server is the common interface all served systems expose to the
// experiment harness (core.System satisfies it too).
type Server interface {
	// Submit schedules trace arrivals into the simulation.
	Submit(trace []workload.Request) error
	// Finalize computes attainment after the simulation drains.
	Finalize(end sim.Time)
	// Attainment returns token-level SLO attainment in [0,1].
	Attainment() float64
	// Completed returns fully served request count.
	Completed() int
}

// request is the baselines' runtime request state.
type request struct {
	id           string
	model        *model.Model
	arrival      sim.Time
	inputTokens  int
	outputTokens int
	tokenTimes   []sim.Time
	kvTokens     int64 // GPU KV footprint in tokens while active
	done         bool
	prefilled    bool
}

func (r *request) contextTokens() int64 {
	return int64(r.inputTokens + len(r.tokenTimes))
}

func (r *request) projectedTokens() int64 {
	return int64(r.inputTokens + r.outputTokens)
}

// observeAll finalizes SLO accounting for a request set.
func observeAll(tr *slo.Tracker, s slo.SLO, reqs []*request, end sim.Time) {
	for _, r := range reqs {
		times := make([]time.Duration, len(r.tokenTimes))
		copy(times, r.tokenTimes)
		tr.ObserveRequest(s, r.arrival, times)
		if !r.done {
			for i := len(r.tokenTimes); i < r.outputTokens; i++ {
				if s.Deadline(r.arrival, i) <= end {
					tr.ObserveDropped()
				}
			}
		}
	}
}

// switchCDF collects exposed model-switch latencies for comparison plots.
type switchCDF = metrics.CDF
