// Package model describes the LLMs served in the experiments: their weight
// footprints, transformer hyperparameters, and KV-cache geometry.
//
// The KV-cache shape convention follows Table 1 of the paper:
// (layers, 2, kv-heads, head-dim) per token, 16-bit elements. The package
// reproduces the paper's listed per-token sizes exactly (512 KB for Qwen-7B,
// 128 KB for InternLM2.5-7B-chat, 800 KB for LLaMA-13B, 2560 KB for Qwen-72B).
package model

import "fmt"

// KVShape is the per-token KV-cache geometry of a model: one K and one V
// vector per layer, split over KVHeads heads of HeadDim elements each.
type KVShape struct {
	Layers       int
	KVHeads      int
	HeadDim      int
	BytesPerElem int
}

// BytesPerToken returns the KV-cache bytes a single token occupies.
func (s KVShape) BytesPerToken() int64 {
	return int64(s.Layers) * 2 * int64(s.KVHeads) * int64(s.HeadDim) * int64(s.BytesPerElem)
}

// String renders the shape in the paper's (layers, 2, heads, dim) notation.
func (s KVShape) String() string {
	return fmt.Sprintf("(%d, 2, %d, %d)", s.Layers, s.KVHeads, s.HeadDim)
}

// Model is a static description of an LLM.
type Model struct {
	Name          string
	Params        int64 // parameter count
	BytesPerParam int   // 2 for FP16/BF16
	Layers        int
	Hidden        int // hidden size h
	FFN           int // FFN intermediate size m
	KVHeads       int // number of KV heads (GQA if < attention heads)
	HeadDim       int
	MaxSeqLen     int
}

// WeightBytes returns the total byte size of the model weights.
func (m *Model) WeightBytes() int64 { return m.Params * int64(m.BytesPerParam) }

// ShardWeightBytes returns the per-GPU weight bytes under tensor parallelism
// of degree tp. tp must be >= 1.
func (m *Model) ShardWeightBytes(tp int) int64 {
	if tp < 1 {
		panic("model: tensor parallel degree must be >= 1")
	}
	return m.WeightBytes() / int64(tp)
}

// KVShape returns the per-token KV cache shape of the full model.
func (m *Model) KVShape() KVShape {
	return KVShape{Layers: m.Layers, KVHeads: m.KVHeads, HeadDim: m.HeadDim, BytesPerElem: m.BytesPerParam}
}

// ShardKVShape returns the per-GPU KV shape under tensor parallelism: heads
// are partitioned across the tp GPUs.
func (m *Model) ShardKVShape(tp int) KVShape {
	s := m.KVShape()
	if tp < 1 {
		panic("model: tensor parallel degree must be >= 1")
	}
	heads := s.KVHeads / tp
	if heads == 0 {
		heads = 1
	}
	s.KVHeads = heads
	return s
}

func (m *Model) String() string { return m.Name }

const (
	billion = 1_000_000_000
	million = 1_000_000
)

// Catalog returns the models used across the paper's experiments, spanning
// 1.8B to 72B parameters, including the four whose KV shapes appear in
// Table 1. The slice is freshly allocated on every call.
func Catalog() []*Model {
	return []*Model{
		// Table 1 models.
		{Name: "Qwen-7B", Params: 7_720 * million, BytesPerParam: 2,
			Layers: 32, Hidden: 4096, FFN: 11008, KVHeads: 32, HeadDim: 128, MaxSeqLen: 8192},
		{Name: "InternLM2.5-7B-chat", Params: 7_740 * million, BytesPerParam: 2,
			Layers: 32, Hidden: 4096, FFN: 14336, KVHeads: 8, HeadDim: 128, MaxSeqLen: 32768},
		{Name: "LLaMA-13B", Params: 13_000 * million, BytesPerParam: 2,
			Layers: 40, Hidden: 5120, FFN: 13824, KVHeads: 40, HeadDim: 128, MaxSeqLen: 4096},
		{Name: "Qwen-72B", Params: 72_700 * million, BytesPerParam: 2,
			Layers: 80, Hidden: 8192, FFN: 24576, KVHeads: 64, HeadDim: 128, MaxSeqLen: 32768},
		// Additional market models (§7.1: families Qwen, Llama, InternLM, Yi;
		// sizes 1.8B to 72B; §7.5: 1.8–7B at TP=1 and 32–72B at TP=4).
		{Name: "Qwen-1.8B", Params: 1_840 * million, BytesPerParam: 2,
			Layers: 24, Hidden: 2048, FFN: 5504, KVHeads: 16, HeadDim: 128, MaxSeqLen: 8192},
		{Name: "Yi-6B", Params: 6_060 * million, BytesPerParam: 2,
			Layers: 32, Hidden: 4096, FFN: 11008, KVHeads: 4, HeadDim: 128, MaxSeqLen: 4096},
		{Name: "Llama-2-7B", Params: 6_740 * million, BytesPerParam: 2,
			Layers: 32, Hidden: 4096, FFN: 11008, KVHeads: 32, HeadDim: 128, MaxSeqLen: 4096},
		{Name: "Yi-9B", Params: 8_830 * million, BytesPerParam: 2,
			Layers: 48, Hidden: 4096, FFN: 11008, KVHeads: 4, HeadDim: 128, MaxSeqLen: 4096},
		{Name: "Qwen-14B", Params: 14_200 * million, BytesPerParam: 2,
			Layers: 40, Hidden: 5120, FFN: 13696, KVHeads: 40, HeadDim: 128, MaxSeqLen: 8192},
		{Name: "Yi-34B", Params: 34_400 * million, BytesPerParam: 2,
			Layers: 60, Hidden: 7168, FFN: 20480, KVHeads: 8, HeadDim: 128, MaxSeqLen: 4096},
		{Name: "Qwen-32B", Params: 32_500 * million, BytesPerParam: 2,
			Layers: 64, Hidden: 5120, FFN: 27392, KVHeads: 8, HeadDim: 128, MaxSeqLen: 32768},
	}
}

// ByName returns the catalog model with the given name, or an error if no
// such model exists.
func ByName(name string) (*Model, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// MarketMix returns n model descriptors drawn round-robin from the 6–14B
// portion of the catalog (the paper's primary evaluation range), cloned and
// renamed so each represents a distinct market model (e.g. a fine-tune).
func MarketMix(n int) []*Model {
	base := []*Model{}
	for _, m := range Catalog() {
		if m.Params >= 6*billion && m.Params <= 15*billion {
			base = append(base, m)
		}
	}
	out := make([]*Model, n)
	for i := 0; i < n; i++ {
		src := base[i%len(base)]
		clone := *src
		clone.Name = fmt.Sprintf("%s-ft%03d", src.Name, i)
		out[i] = &clone
	}
	return out
}

// LargeMix returns n distinct 72B-class models for the TP=4 experiments
// (§7.4, Fig. 17 right).
func LargeMix(n int) []*Model {
	src, err := ByName("Qwen-72B")
	if err != nil {
		panic(err)
	}
	out := make([]*Model, n)
	for i := 0; i < n; i++ {
		clone := *src
		clone.Name = fmt.Sprintf("%s-ft%03d", src.Name, i)
		out[i] = &clone
	}
	return out
}

// SmallMix returns n models in the 6–7B range for the A10 experiments
// (§7.4, Fig. 17 left).
func SmallMix(n int) []*Model {
	base := []*Model{}
	for _, m := range Catalog() {
		if m.Params >= 6*billion && m.Params < 8*billion {
			base = append(base, m)
		}
	}
	out := make([]*Model, n)
	for i := 0; i < n; i++ {
		src := base[i%len(base)]
		clone := *src
		clone.Name = fmt.Sprintf("%s-ft%03d", src.Name, i)
		out[i] = &clone
	}
	return out
}

// DeploymentMix reproduces the production deployment population of §7.5:
// twenty-eight 1.8–7B models (TP=1) and nineteen 32–72B models (TP=4).
// It returns the models plus a parallel slice of TP degrees.
func DeploymentMix() (models []*Model, tps []int) {
	small := []string{"Qwen-1.8B", "Yi-6B", "Llama-2-7B", "Qwen-7B", "InternLM2.5-7B-chat"}
	large := []string{"Qwen-32B", "Yi-34B", "Qwen-72B"}
	for i := 0; i < 28; i++ {
		src, _ := ByName(small[i%len(small)])
		clone := *src
		clone.Name = fmt.Sprintf("%s-prod%02d", src.Name, i)
		models = append(models, &clone)
		tps = append(tps, 1)
	}
	for i := 0; i < 19; i++ {
		src, _ := ByName(large[i%len(large)])
		clone := *src
		clone.Name = fmt.Sprintf("%s-prod%02d", src.Name, i)
		models = append(models, &clone)
		tps = append(tps, 4)
	}
	return models, tps
}
