package model

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestTable1 verifies the KV-cache shapes and per-token sizes the paper
// lists in Table 1, to the byte.
func TestTable1(t *testing.T) {
	cases := []struct {
		name      string
		shape     string
		wantBytes int64
	}{
		{"Qwen-7B", "(32, 2, 32, 128)", 512 * 1024},
		{"InternLM2.5-7B-chat", "(32, 2, 8, 128)", 128 * 1024},
		{"LLaMA-13B", "(40, 2, 40, 128)", 800 * 1024},
		{"Qwen-72B", "(80, 2, 64, 128)", 2560 * 1024},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.name, err)
		}
		if got := m.KVShape().String(); got != c.shape {
			t.Errorf("%s shape = %s, want %s", c.name, got, c.shape)
		}
		if got := m.KVShape().BytesPerToken(); got != c.wantBytes {
			t.Errorf("%s bytes/token = %d, want %d", c.name, got, c.wantBytes)
		}
	}
}

func TestWeightBytes(t *testing.T) {
	m, err := ByName("LLaMA-13B")
	if err != nil {
		t.Fatal(err)
	}
	// 13B params in BF16 is 26 GB — the figure used throughout §4.2 and §5.1.
	if got := m.WeightBytes(); got != 26_000_000_000 {
		t.Errorf("LLaMA-13B weight bytes = %d, want 26e9", got)
	}
}

func TestShardWeightBytes(t *testing.T) {
	m, _ := ByName("Qwen-72B")
	if got, want := m.ShardWeightBytes(4), m.WeightBytes()/4; got != want {
		t.Errorf("ShardWeightBytes(4) = %d, want %d", got, want)
	}
	if got := m.ShardWeightBytes(1); got != m.WeightBytes() {
		t.Errorf("ShardWeightBytes(1) = %d, want %d", got, m.WeightBytes())
	}
}

func TestShardWeightBytesPanicsOnZeroTP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ShardWeightBytes(0) did not panic")
		}
	}()
	m, _ := ByName("Qwen-7B")
	m.ShardWeightBytes(0)
}

func TestShardKVShape(t *testing.T) {
	m, _ := ByName("Qwen-72B")
	s := m.ShardKVShape(4)
	if s.KVHeads != 16 {
		t.Errorf("TP=4 shard KV heads = %d, want 16", s.KVHeads)
	}
	if got, want := s.BytesPerToken(), m.KVShape().BytesPerToken()/4; got != want {
		t.Errorf("shard bytes/token = %d, want %d", got, want)
	}
	// GQA model with fewer heads than TP keeps at least one head (replicated).
	y, _ := ByName("Yi-6B")
	if got := y.ShardKVShape(8).KVHeads; got != 1 {
		t.Errorf("Yi-6B TP=8 shard heads = %d, want 1", got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("ByName on unknown model returned nil error")
	}
}

func TestCatalogSane(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Catalog() {
		if seen[m.Name] {
			t.Errorf("duplicate catalog model %q", m.Name)
		}
		seen[m.Name] = true
		if m.Params <= 0 || m.Layers <= 0 || m.Hidden <= 0 || m.FFN <= 0 ||
			m.KVHeads <= 0 || m.HeadDim <= 0 || m.BytesPerParam <= 0 {
			t.Errorf("catalog model %q has non-positive field: %+v", m.Name, m)
		}
		if m.FFN <= m.Hidden {
			t.Errorf("catalog model %q: FFN %d should exceed hidden %d", m.Name, m.FFN, m.Hidden)
		}
	}
}

func TestMarketMix(t *testing.T) {
	ms := MarketMix(40)
	if len(ms) != 40 {
		t.Fatalf("MarketMix(40) returned %d models", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Name] {
			t.Errorf("duplicate market model name %q", m.Name)
		}
		names[m.Name] = true
		gb := float64(m.WeightBytes()) / 1e9
		if gb < 12 || gb > 30 {
			t.Errorf("market model %q weights %.1f GB outside 6–14B FP16 range", m.Name, gb)
		}
	}
}

func TestSmallAndLargeMix(t *testing.T) {
	for _, m := range SmallMix(10) {
		if m.Params >= 8*billion {
			t.Errorf("SmallMix model %q has %d params", m.Name, m.Params)
		}
	}
	for _, m := range LargeMix(4) {
		if m.Params < 70*billion {
			t.Errorf("LargeMix model %q has %d params", m.Name, m.Params)
		}
	}
}

func TestDeploymentMix(t *testing.T) {
	models, tps := DeploymentMix()
	if len(models) != 47 || len(tps) != 47 {
		t.Fatalf("DeploymentMix sizes = %d/%d, want 47/47", len(models), len(tps))
	}
	small, large := 0, 0
	for i, m := range models {
		switch tps[i] {
		case 1:
			small++
			if m.Params > 8*billion {
				t.Errorf("TP=1 model %q too large (%d params)", m.Name, m.Params)
			}
		case 4:
			large++
			if m.Params < 30*billion {
				t.Errorf("TP=4 model %q too small (%d params)", m.Name, m.Params)
			}
		default:
			t.Errorf("unexpected TP %d", tps[i])
		}
	}
	if small != 28 || large != 19 {
		t.Errorf("mix = %d small + %d large, want 28 + 19 (§7.5)", small, large)
	}
}

// Property: per-token KV bytes scale linearly in each shape dimension.
func TestKVShapeLinearity(t *testing.T) {
	prop := func(layers, heads, dim uint8) bool {
		l, h, d := int(layers%64)+1, int(heads%64)+1, int(dim)+1
		s := KVShape{Layers: l, KVHeads: h, HeadDim: d, BytesPerElem: 2}
		d2 := KVShape{Layers: 2 * l, KVHeads: h, HeadDim: d, BytesPerElem: 2}
		return d2.BytesPerToken() == 2*s.BytesPerToken() &&
			s.BytesPerToken() == int64(l)*2*int64(h)*int64(d)*2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKVShapeString(t *testing.T) {
	s := KVShape{Layers: 40, KVHeads: 40, HeadDim: 128, BytesPerElem: 2}
	if got := s.String(); !strings.HasPrefix(got, "(40, 2, 40, 128") {
		t.Errorf("shape string = %q", got)
	}
}
