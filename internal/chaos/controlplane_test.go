package chaos

import (
	"fmt"
	"testing"
	"time"
)

// Golden control-plane schedule: a leader-side partition, a replica crash
// with restart, an asymmetric netsplit, slow links, and an instance crash —
// all in one run. The counts are pinned: a change here means the replication
// protocol, the fault grammar, or the cluster wiring changed behavior.
func TestGoldenControlPlaneSchedule(t *testing.T) {
	res, err := Run(Config{
		Seed:          5,
		Horizon:       120 * time.Second,
		StoreReplicas: 3,
		Spec: "partition@20s+5s:ms0,rcrash@35s+10s:ms1,netsplit@55s+6s:ms0~ms1|ms2," +
			"netdelay@70s+8s*4:ms2,crash@40s:chaos/decode1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if len(res.InjectErrs) != 0 {
		t.Fatalf("injection errors: %v", res.InjectErrs)
	}
	if res.Injected != 5 {
		t.Fatalf("injected = %d", res.Injected)
	}
	// Golden counts for this seed+schedule.
	if res.Completed != 59 || res.Failed != 0 || res.Failovers != 1 {
		t.Fatalf("completed=%d failed=%d failovers=%d, want 59/0/1",
			res.Completed, res.Failed, res.Failovers)
	}
	if res.Store == nil {
		t.Fatal("no store view on a replicated run")
	}
	if res.Store.Mode != "replicated" || len(res.Store.Replicas) != 3 {
		t.Fatalf("store view = %+v", res.Store)
	}
	if res.Store.Leader == "" {
		t.Fatal("no leader at drain")
	}
	if res.StoreOpsAcked == 0 {
		t.Fatal("no store ops recorded")
	}
	if res.StoreOpP50 <= 0 || res.StoreOpP99 < res.StoreOpP50 {
		t.Fatalf("op latency p50=%v p99=%v", res.StoreOpP50, res.StoreOpP99)
	}
	// One fault at a time never cuts quorum, and the client probes past any
	// single dead or partitioned replica within its op deadline: the whole
	// schedule rides with zero client-visible unavailability.
	if res.UnavailWindows != 0 {
		t.Fatalf("unavailability = %d windows / %v on single-fault schedule",
			res.UnavailWindows, res.UnavailTotal)
	}
}

// Overlapping crashes of two replicas DO cut quorum: the store must refuse
// (not misserve) writes in the window and the unavailability meter must show
// it — the audit measures the outage instead of pretending the fault was
// free.
func TestQuorumLossIsMeasuredUnavailability(t *testing.T) {
	res, err := Run(Config{
		Seed:          5,
		Horizon:       120 * time.Second,
		StoreReplicas: 3,
		Spec:          "rcrash@30s+15s:ms0,rcrash@32s+15s:ms1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.UnavailWindows == 0 || res.UnavailTotal <= 0 {
		t.Fatalf("quorum loss measured no unavailability (%d windows / %v)",
			res.UnavailWindows, res.UnavailTotal)
	}
	// Both replicas restart: the store recovers and the run still drains with
	// a live leader.
	if res.Store.Leader == "" {
		t.Fatal("no leader after the quorum-loss window healed")
	}
}

// The acceptance matrix: a 3-replica control plane keeps serving — and keeps
// failing over the data plane — through a crash of ANY single replica,
// including permanent crashes (no restart).
func TestServesThroughAnySingleReplicaCrash(t *testing.T) {
	for i := 0; i < 3; i++ {
		i := i
		t.Run(fmt.Sprintf("ms%d", i), func(t *testing.T) {
			res, err := Run(Config{
				Seed:          5,
				Horizon:       120 * time.Second,
				StoreReplicas: 3,
				Spec:          fmt.Sprintf("rcrash@30s:ms%d,crash@40s:chaos/decode1", i),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
			if res.Failovers != 1 {
				t.Fatalf("failovers = %d with ms%d down", res.Failovers, i)
			}
			if res.Failed != 0 {
				t.Fatalf("%d requests failed with ms%d down", res.Failed, i)
			}
			if res.Completed != 59 {
				t.Fatalf("completed = %d with ms%d down, want 59", res.Completed, i)
			}
		})
	}
}

// Random-seed partition sweep: 20 seeds of mixed fault schedules (replica
// kinds included) against the 3-replica store, each audited for zero
// violations — the linearizability checker, the leader-per-term rule, and
// the no-acknowledged-write-lost rule all hold under arbitrary compositions.
func TestReplicatedRandomSweep(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			res, err := Run(Config{
				Seed:          int64(seed),
				Horizon:       90 * time.Second,
				StoreReplicas: 3,
				RandomFaults:  5,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d (%s): %s", seed, res.Spec, v)
			}
			if res.StoreOpsAcked == 0 {
				t.Errorf("seed %d: no acked store ops", seed)
			}
		})
	}
}

// StoreReplicas = 0 keeps the single store and must leave the established
// golden schedule byte-identical — the control plane is strictly additive.
func TestSingleStoreGoldenUnchanged(t *testing.T) {
	res, err := Run(Config{
		Seed:    5,
		Horizon: 120 * time.Second,
		Spec:    "partition@38s+6s,crash@40s:chaos/decode1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed != 59 || res.Failovers != 1 {
		t.Fatalf("completed=%d failovers=%d, want 59/1", res.Completed, res.Failovers)
	}
	if res.Store != nil {
		t.Fatal("single-store run produced a replicated store view")
	}
}
