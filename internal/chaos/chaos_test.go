package chaos

import (
	"testing"
	"time"
)

// Golden seeded regression table: each schedule is deterministic given its
// seed, so the outcome is an exact expectation, not a flake. The table pins
// the recovery machinery's observable behavior; a diff here means recovery
// semantics changed and must be reviewed, not papered over.
func TestSeededFaultSchedules(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		completed int
		failed    int
		injected  int
		failovers int
	}{
		{
			name:      "decode-crash-failover",
			cfg:       Config{Seed: 1, Spec: "crash@40s:chaos/decode0"},
			completed: 51, failed: 0, injected: 1, failovers: 1,
		},
		{
			name:      "prefill-crash-failover",
			cfg:       Config{Seed: 2, Spec: "crash@30s:chaos/prefill1"},
			completed: 62, failed: 0, injected: 1, failovers: 1,
		},
		{
			// Both decode instances die: in-flight and later work is cleanly
			// rejected, nothing hangs.
			name:      "double-decode-crash",
			cfg:       Config{Seed: 3, Spec: "crash@35s:chaos/decode0,crash@50s:chaos/decode1"},
			completed: 19, failed: 57, injected: 2, failovers: 2,
		},
		{
			name:      "transfer-and-fetch-storm",
			cfg:       Config{Seed: 4, Spec: "xfer@20s+3s,fetchfail@45s+10s,fetchslow@70s+20s*4"},
			completed: 67, failed: 0, injected: 3, failovers: 0,
		},
		{
			// The store is unreachable while the crash happens: detection is
			// delayed past the partition, then failover proceeds.
			name:      "partition-during-crash",
			cfg:       Config{Seed: 5, Spec: "partition@38s+6s,crash@40s:chaos/decode1"},
			completed: 59, failed: 0, injected: 2, failovers: 1,
		},
		{
			name:      "random-seed-11",
			cfg:       Config{Seed: 11},
			completed: 85, failed: 0, injected: 4, failovers: 1,
		},
		{
			name:      "random-seed-23",
			cfg:       Config{Seed: 23},
			completed: 87, failed: 0, injected: 4, failovers: 0,
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			t.Logf("spec=%s requests=%d completed=%d failed=%d injected=%d failovers=%d stats=%+v",
				res.Spec, res.Requests, res.Completed, res.Failed, res.Injected, res.Failovers, res.Stats)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests",
					res.Completed, res.Failed, res.Requests)
			}
			if res.Completed != tc.completed || res.Failed != tc.failed ||
				res.Injected != tc.injected || res.Failovers != tc.failovers {
				t.Fatalf("outcome drifted from golden: completed %d/%d failed %d/%d injected %d/%d failovers %d/%d",
					res.Completed, tc.completed, res.Failed, tc.failed,
					res.Injected, tc.injected, res.Failovers, tc.failovers)
			}
		})
	}
}

// TestChaosSweep runs a batch of random seeds — the "no seed may violate the
// invariants" safety net beyond the pinned table.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 112; seed++ {
		res, err := Run(Config{Seed: seed, RandomFaults: 5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, viol := range res.Violations {
			t.Errorf("seed %d (spec %s): %s", seed, res.Spec, viol)
		}
		if res.Completed+res.Failed != res.Requests {
			t.Fatalf("seed %d: completed %d + failed %d != %d requests",
				seed, res.Completed, res.Failed, res.Requests)
		}
	}
}

// TestOverloadChaosInvariants runs fault schedules with overload control
// active — brownout shedding, the deadline reaper, and failover all mutating
// the same queues — and audits the full invariant set. Sheds are clean
// rejections, so terminal-state accounting must still balance exactly.
func TestOverloadChaosInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			// 3x-ish the small-mix capacity plus a prefill crash: the reaper
			// and crash recovery race over the surviving queue.
			name: "overload-prefill-crash",
			cfg:  Config{Seed: 7, Rate: 1.2, Horizon: 60 * time.Second, Overload: true, Spec: "crash@25s:chaos/prefill0"},
		},
		{
			// Overload while the decode side degrades to one instance.
			name: "overload-decode-crash",
			cfg:  Config{Seed: 8, Rate: 1.2, Horizon: 60 * time.Second, Overload: true, Spec: "crash@30s:chaos/decode1"},
		},
		{
			name: "overload-random-faults",
			cfg:  Config{Seed: 9, Rate: 1.0, Horizon: 90 * time.Second, Overload: true, RandomFaults: 4},
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			t.Logf("spec=%s requests=%d completed=%d failed=%d sheds=%v failovers=%d",
				res.Spec, res.Requests, res.Completed, res.Failed, res.Sheds, res.Failovers)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests (sheds %v)",
					res.Completed, res.Failed, res.Requests, res.Sheds)
			}
			shed := 0
			for _, n := range res.Sheds {
				shed += n
			}
			if shed == 0 {
				t.Fatal("overload run shed nothing — the schedule is not overloading")
			}
		})
	}
}
