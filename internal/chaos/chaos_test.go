package chaos

import (
	"math/rand"
	"testing"
	"time"

	"aegaeon/internal/cluster"
	"aegaeon/internal/fault"
	"aegaeon/internal/latency"
	"aegaeon/internal/model"
	"aegaeon/internal/prefixcache"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/workload"
)

// Golden seeded regression table: each schedule is deterministic given its
// seed, so the outcome is an exact expectation, not a flake. The table pins
// the recovery machinery's observable behavior; a diff here means recovery
// semantics changed and must be reviewed, not papered over.
func TestSeededFaultSchedules(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		completed int
		failed    int
		injected  int
		failovers int
	}{
		{
			name:      "decode-crash-failover",
			cfg:       Config{Seed: 1, Spec: "crash@40s:chaos/decode0"},
			completed: 51, failed: 0, injected: 1, failovers: 1,
		},
		{
			name:      "prefill-crash-failover",
			cfg:       Config{Seed: 2, Spec: "crash@30s:chaos/prefill1"},
			completed: 62, failed: 0, injected: 1, failovers: 1,
		},
		{
			// Both decode instances die: in-flight and later work is cleanly
			// rejected, nothing hangs.
			name:      "double-decode-crash",
			cfg:       Config{Seed: 3, Spec: "crash@35s:chaos/decode0,crash@50s:chaos/decode1"},
			completed: 19, failed: 57, injected: 2, failovers: 2,
		},
		{
			name:      "transfer-and-fetch-storm",
			cfg:       Config{Seed: 4, Spec: "xfer@20s+3s,fetchfail@45s+10s,fetchslow@70s+20s*4"},
			completed: 67, failed: 0, injected: 3, failovers: 0,
		},
		{
			// The store is unreachable while the crash happens: detection is
			// delayed past the partition, then failover proceeds.
			name:      "partition-during-crash",
			cfg:       Config{Seed: 5, Spec: "partition@38s+6s,crash@40s:chaos/decode1"},
			completed: 59, failed: 0, injected: 2, failovers: 1,
		},
		{
			// The draw includes a repeat crash on prefill0, which fails to
			// inject (already dead) — 3 of 4 faults land.
			name:      "random-seed-11",
			cfg:       Config{Seed: 11},
			completed: 85, failed: 0, injected: 3, failovers: 2,
		},
		{
			// The draw includes a spot reclaim on prefill1: notice, aware
			// evacuation, revocation, failover — all inside a random schedule.
			name:      "random-seed-23",
			cfg:       Config{Seed: 23},
			completed: 87, failed: 0, injected: 4, failovers: 1,
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			t.Logf("spec=%s requests=%d completed=%d failed=%d injected=%d failovers=%d stats=%+v",
				res.Spec, res.Requests, res.Completed, res.Failed, res.Injected, res.Failovers, res.Stats)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests",
					res.Completed, res.Failed, res.Requests)
			}
			if res.Completed != tc.completed || res.Failed != tc.failed ||
				res.Injected != tc.injected || res.Failovers != tc.failovers {
				t.Fatalf("outcome drifted from golden: completed %d/%d failed %d/%d injected %d/%d failovers %d/%d",
					res.Completed, tc.completed, res.Failed, tc.failed,
					res.Injected, tc.injected, res.Failovers, tc.failovers)
			}
		})
	}
}

// TestDecisionCoverageSwitchHeavy is the provenance acceptance gate: a
// switch-heavy run (many models over two prefill + two decode instances, so
// every prefill group and decode turn rotates the resident model) under
// overload control and spot-market faults, where CheckCoverage must hold —
// every terminal request has an admission-to-terminal chain and every shed,
// eviction, and evacuation record carries evidence terms. The journal must
// actually have exercised the policy-site families the run drove, or the
// audit would be passing vacuously.
func TestDecisionCoverageSwitchHeavy(t *testing.T) {
	res, err := Run(Config{
		Seed:     7,
		Models:   8,
		Rate:     0.6,
		Overload: true,
		Spot:     true,
		Spec:     "reclaim@40s+8s:chaos/decode0,throttle@55s+20s*2.5:chaos/prefill1,reclaim@80s:chaos/decode1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, viol := range res.Violations {
		t.Errorf("invariant: %s", viol)
	}
	j := res.Decisions
	if j == nil {
		t.Fatal("chaos run carried no decision journal")
	}
	kinds := map[string]uint64{}
	for _, c := range j.Counts() {
		kinds[c.Kind] += c.N
	}
	t.Logf("decisions=%d chains=%d kinds=%v sheds=%v", j.Total(), j.TrackedRequests(), kinds, res.Sheds)
	for _, want := range []string{"admission", "prefill_routing", "decode_placement", "switch", "terminal", "evacuation"} {
		if kinds[want] == 0 {
			t.Errorf("switch-heavy overload+market run journaled no %q decisions", want)
		}
	}
	if kinds["switch"] < 20 {
		t.Errorf("run was not switch-heavy: only %d switch decisions journaled", kinds["switch"])
	}
	// Every terminal request's chain is live-queryable by ID, ends in its
	// terminal record, and starts at admission — the /debug/why contract.
	sys := findDeployment(t, res)
	for _, r := range sys {
		chain := j.Chain(r)
		if len(chain) == 0 {
			t.Fatalf("request %s has no chain", r)
		}
		if chain[len(chain)-1].Kind != "terminal" {
			t.Errorf("request %s chain ends with %s, want terminal", r, chain[len(chain)-1].Kind)
		}
	}
}

// findDeployment returns a sample of terminal request IDs from the run — the
// journal's chains snapshot already holds every retained request.
func findDeployment(t *testing.T, res *Result) []string {
	t.Helper()
	chains := res.Decisions.Chains()
	if len(chains) == 0 {
		t.Fatal("journal retained no request chains")
	}
	n := len(chains)
	if n > 16 {
		n = 16
	}
	ids := make([]string, 0, n)
	for _, c := range chains[:n] {
		ids = append(ids, c.Request)
	}
	return ids
}

// TestChaosSweep runs a batch of random seeds — the "no seed may violate the
// invariants" safety net beyond the pinned table.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 112; seed++ {
		res, err := Run(Config{Seed: seed, RandomFaults: 5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, viol := range res.Violations {
			t.Errorf("seed %d (spec %s): %s", seed, res.Spec, viol)
		}
		if res.Completed+res.Failed != res.Requests {
			t.Fatalf("seed %d: completed %d + failed %d != %d requests",
				seed, res.Completed, res.Failed, res.Requests)
		}
	}
}

// TestPrefixChaosInvariants runs fault schedules with the prefix cache on
// and a multi-turn workload: crashes drop device tiers mid-chain, recovery
// re-prefills pinned chains, and the drained end state must show refcounts
// back at zero and every slab accounted for (no leak, no double-free).
func TestPrefixChaosInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			// A prefill crash is the interesting one: device copies die with
			// the instance and in-flight pins must be released on recovery.
			name: "prefix-prefill-crash",
			cfg:  Config{Seed: 13, Prefix: true, Spec: "crash@40s:chaos/prefill0"},
		},
		{
			name: "prefix-decode-crash",
			cfg:  Config{Seed: 14, Prefix: true, Spec: "crash@45s:chaos/decode0"},
		},
		{
			name: "prefix-double-prefill-crash",
			cfg:  Config{Seed: 15, Prefix: true, Spec: "crash@30s:chaos/prefill0,crash@55s:chaos/prefill1"},
		},
		{
			name: "prefix-random-faults",
			cfg:  Config{Seed: 16, Prefix: true},
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			if res.Prefix == nil {
				t.Fatal("prefix run produced no prefix stats")
			}
			t.Logf("spec=%s requests=%d completed=%d failed=%d prefix hits=%d saved=%d drops=%d",
				res.Spec, res.Requests, res.Completed, res.Failed,
				res.Prefix.Hits, res.Prefix.TokensSaved, res.Prefix.DeviceDrops)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests",
					res.Completed, res.Failed, res.Requests)
			}
			if res.Prefix.Hits == 0 {
				t.Error("multi-turn chaos run never reused a prefix")
			}
			if res.Prefix.PinnedEntries != 0 {
				t.Errorf("%d entries pinned after drain", res.Prefix.PinnedEntries)
			}
		})
	}
}

// TestPrefixEvictionRacesReuse is the seeded -race schedule: a tiny host
// budget keeps the cache under constant eviction pressure while multi-turn
// sessions reuse chains and a prefill crash drops a device tier mid-run, and
// a concurrent prober reads the cache's synchronized surface the whole time
// (as the live gateway's scrape handlers do). Run under -race in CI.
func TestPrefixEvictionRacesReuse(t *testing.T) {
	const seed = 21
	se := sim.NewEngine(seed)
	f := fault.New(se, seed+1)
	models := model.SmallMix(4)
	c, err := cluster.New(se, cluster.Config{
		Prof:   latency.H800(),
		SLO:    slo.Default(),
		Faults: f,
		Deployments: []cluster.DeploymentConfig{{
			Name: "chaos", TP: 1, NumPrefill: 2, NumDecode: 2, Models: models,
		}},
		// Budgets a few blocks deep: every few inserts must evict.
		Prefix: &prefixcache.Config{HostBytes: 64 << 20, DeviceBytes: 32 << 20, Routing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	rng := rand.New(rand.NewSource(seed + 2))
	trace := workload.MultiTurnTrace(rng, names, 0.05, 120*time.Second,
		workload.ShareGPT(), workload.MultiTurnConfig{MeanTurns: 3, SystemPromptTokens: 128})
	if err := c.Submit(trace); err != nil {
		t.Fatal(err)
	}
	sched, err := fault.ParseSpec("crash@40s:chaos/prefill0")
	if err != nil {
		t.Fatal(err)
	}
	fault.NewInjector(se, c, sched).Arm()
	se.At(0, c.StartHealth)
	se.At(300*time.Second, c.StopHealth)

	pc := c.Deployments()[0].System.PrefixCache()
	sysSegs := []workload.PromptSeg{{Seed: workload.SeedString("system\x00" + names[0]), Len: 128}}
	done := make(chan struct{})
	probed := make(chan int)
	go func() {
		// Probe-then-check so at least one iteration always runs, even if the
		// simulation drains before this goroutine is first scheduled.
		n := 0
		for {
			_ = pc.Stats()
			_, _ = pc.MatchTokensOn("prefill1", names[0], sysSegs, 129)
			_ = pc.HostResidentBytes()
			if bad := pc.CheckConsistency(); len(bad) != 0 {
				t.Errorf("mid-run consistency: %v", bad)
				probed <- n
				return
			}
			n++
			select {
			case <-done:
				probed <- n
				return
			default:
			}
		}
	}()

	se.Run()
	c.Finalize(se.Now())
	close(done)
	if n := <-probed; n == 0 {
		t.Error("prober never ran")
	}

	for _, viol := range VerifyInvariants(c) {
		t.Errorf("invariant: %s", viol)
	}
	st := pc.Stats()
	t.Logf("hits=%d saved=%d hostEvictions=%d devEvictions=%d drops=%d",
		st.Hits, st.TokensSaved, st.HostEvictions, st.DeviceEvictions, st.DeviceDrops)
	if st.Hits == 0 {
		t.Error("no prefix reuse under the seeded schedule")
	}
	if st.HostEvictions == 0 {
		t.Error("tiny budget never forced a host eviction — no eviction/reuse race exercised")
	}
}

// TestOverloadChaosInvariants runs fault schedules with overload control
// active — brownout shedding, the deadline reaper, and failover all mutating
// the same queues — and audits the full invariant set. Sheds are clean
// rejections, so terminal-state accounting must still balance exactly.
func TestOverloadChaosInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			// 3x-ish the small-mix capacity plus a prefill crash: the reaper
			// and crash recovery race over the surviving queue.
			name: "overload-prefill-crash",
			cfg:  Config{Seed: 7, Rate: 1.2, Horizon: 60 * time.Second, Overload: true, Spec: "crash@25s:chaos/prefill0"},
		},
		{
			// Overload while the decode side degrades to one instance.
			name: "overload-decode-crash",
			cfg:  Config{Seed: 8, Rate: 1.2, Horizon: 60 * time.Second, Overload: true, Spec: "crash@30s:chaos/decode1"},
		},
		{
			name: "overload-random-faults",
			cfg:  Config{Seed: 9, Rate: 1.0, Horizon: 90 * time.Second, Overload: true, RandomFaults: 4},
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			t.Logf("spec=%s requests=%d completed=%d failed=%d sheds=%v failovers=%d",
				res.Spec, res.Requests, res.Completed, res.Failed, res.Sheds, res.Failovers)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests (sheds %v)",
					res.Completed, res.Failed, res.Requests, res.Sheds)
			}
			shed := 0
			for _, n := range res.Sheds {
				shed += n
			}
			if shed == 0 {
				t.Fatal("overload run shed nothing — the schedule is not overloading")
			}
		})
	}
}

// TestFleetChaosAccounting crashes one decode instance and audits the fleet
// ledger directly: the crashed device is parked in the faulted state with
// its post-crash time charged there, every device's state integrals conserve
// GPU-seconds exactly (verifyFleet found nothing), and survivors keep
// accumulating busy time — no GPU-second is double-counted or lost across
// the crash edge.
func TestFleetChaosAccounting(t *testing.T) {
	res, err := Run(Config{Seed: 1, Spec: "crash@40s:chaos/decode0"})
	if err != nil {
		t.Fatal(err)
	}
	for _, viol := range res.Violations {
		t.Errorf("invariant: %s", viol)
	}
	snap := res.Fleet
	if snap == nil {
		t.Fatal("chaos run produced no fleet snapshot")
	}
	if len(snap.ConservationErrors) > 0 {
		t.Fatalf("conservation violated: %v", snap.ConservationErrors)
	}
	var crashed, survivors int
	for _, d := range snap.Devices {
		if d.Device == "decode0" {
			crashed++
			if !d.Faulted {
				t.Errorf("decode0 crashed but not marked faulted")
			}
			if d.Current != "faulted" {
				t.Errorf("decode0 currently charged to %s, want faulted", d.Current)
			}
			faultedS := d.StatesS["faulted"]
			wantS := snap.NowSeconds - 40 // crash instant through drain
			if faultedS <= 0 || faultedS > wantS+1e-6 {
				t.Errorf("decode0 faulted %vs, want in (0, %vs]", faultedS, wantS)
			}
			// Post-crash time is faulted, so non-faulted states account for
			// at most the 40 pre-crash seconds.
			if other := d.WallS - faultedS; other > 40+1e-6 {
				t.Errorf("decode0 non-faulted time %vs exceeds pre-crash window", other)
			}
		} else {
			survivors++
			if d.Faulted {
				t.Errorf("%s marked faulted without a crash", d.Device)
			}
			if d.StatesS["faulted"] != 0 {
				t.Errorf("%s accumulated %vs faulted time without a crash",
					d.Device, d.StatesS["faulted"])
			}
		}
	}
	if crashed != 1 {
		t.Fatalf("crashed device missing from snapshot (%d devices)", len(snap.Devices))
	}
	if survivors == 0 {
		t.Fatal("no surviving devices in snapshot")
	}
	if snap.Fleet.FaultedS <= 0 {
		t.Error("fleet rollup shows no faulted time after a crash")
	}
	if snap.Fleet.BusyS <= 0 {
		t.Error("fleet rollup shows no busy time — ledger observed no work")
	}
}

// TestSpotChaosInvariants pins explicit spot-market schedules: reclaim
// notices and thermal throttles on a heterogeneous pool, in aware and naive
// modes, audited by the full invariant set (verifyMarket reconciles the
// counters against the preemption records, checks revoked devices are dead
// and ineligible, and that no evacuation transfer is left pending).
func TestSpotChaosInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		// Exact seeded expectations on the market counters.
		preemptions, revocations, throttles int
	}{
		{
			// Aware mode: the notice evacuates decode1's KV inside the 5s
			// grace window; a later throttle discounts decode0's capability.
			name: "aware-decode-reclaim",
			cfg: Config{Seed: 31, Rate: 0.5, MarketClasses: "H800,A10", Spot: true,
				Spec: "reclaim@40s+5s:chaos/decode1,throttle@60s+20s*2.5:chaos/decode0"},
			preemptions: 1, revocations: 1, throttles: 1,
		},
		{
			// Naive mode: same notice, no advance reaction — everything
			// GPU-resident at the deadline recovers through the crash path.
			name: "naive-decode-reclaim",
			cfg: Config{Seed: 31, Rate: 0.5, MarketClasses: "H800,A10", Spot: true, MarketNaive: true,
				Spec: "reclaim@40s+5s:chaos/decode1"},
			preemptions: 1, revocations: 1,
		},
		{
			// A prefill reclaim re-homes queued groups and drops prefix
			// device copies in favor of their host-tier chains.
			name: "aware-prefill-reclaim-prefix",
			cfg: Config{Seed: 32, Prefix: true, MarketClasses: "H800,A10",
				Spec: "reclaim@45s+5s:chaos/prefill0"},
			preemptions: 1, revocations: 1,
		},
		{
			// Two of two decodes reclaimed back to back: the second notice
			// lands while the pool is already degraded; in-flight and later
			// decode work must terminate cleanly, nothing hangs.
			name: "aware-double-decode-reclaim",
			cfg: Config{Seed: 33, Rate: 0.5, Spot: true,
				Spec: "reclaim@35s+5s:chaos/decode0,reclaim@55s+5s:chaos/decode1"},
			preemptions: 2, revocations: 2,
		},
	}
	for i := range cases {
		tc := &cases[i]
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range res.Violations {
				t.Errorf("invariant: %s", viol)
			}
			if res.Market == nil {
				t.Fatal("chaos run produced no market snapshot")
			}
			st := res.Market.Stats
			t.Logf("spec=%s requests=%d completed=%d failed=%d failovers=%d market=%+v",
				res.Spec, res.Requests, res.Completed, res.Failed, res.Failovers, st)
			if res.Completed+res.Failed != res.Requests {
				t.Fatalf("completed %d + failed %d != %d requests",
					res.Completed, res.Failed, res.Requests)
			}
			if st.Preemptions != tc.preemptions || st.Revocations != tc.revocations || st.Throttles != tc.throttles {
				t.Fatalf("market counters drifted: preemptions %d/%d revocations %d/%d throttles %d/%d",
					st.Preemptions, tc.preemptions, st.Revocations, tc.revocations, st.Throttles, tc.throttles)
			}
			if res.Failovers < tc.revocations {
				t.Errorf("%d revocations but only %d failovers — a revoked device was not failed over",
					tc.revocations, res.Failovers)
			}
			if tc.cfg.MarketNaive {
				if st.EvacuatedKVBytes != 0 {
					t.Errorf("naive run evacuated %d KV bytes — naive mode must not react to notices", st.EvacuatedKVBytes)
				}
			} else if st.LostKVBytes > 0 && st.EvacuatedKVBytes == 0 {
				t.Errorf("aware run lost %d KV bytes without evacuating any", st.LostKVBytes)
			}
		})
	}
}

// TestSpotChaosSweep is the random-schedule safety net with the spot market
// live: heterogeneous classes, price traces ticking, and schedules drawn from
// the full fault grammar (reclaim and throttle included), in both placement
// modes. Run under -race in CI.
func TestSpotChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(300); seed < 308; seed++ {
		cfg := Config{Seed: seed, RandomFaults: 6, MarketClasses: "H800,A10", Spot: true,
			MarketNaive: seed%2 == 1}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, viol := range res.Violations {
			t.Errorf("seed %d (spec %s): %s", seed, res.Spec, viol)
		}
		if res.Completed+res.Failed != res.Requests {
			t.Fatalf("seed %d: completed %d + failed %d != %d requests",
				seed, res.Completed, res.Failed, res.Requests)
		}
		if res.Market.Stats.PriceTicks == 0 {
			t.Errorf("seed %d: spot run saw no price ticks", seed)
		}
	}
}
