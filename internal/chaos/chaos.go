// Package chaos is the fault-injection harness: it runs a cluster under a
// seeded fault schedule — instance crashes, transfer and fetch failures,
// metadata-store partitions — with the proxy's health-lease failover active,
// then audits the end state against the recovery invariants: every request
// reaches exactly one terminal state, completed streams are gap-free, no KV
// is leaked on surviving instances, and fault accounting is consistent.
// Schedules are deterministic given a seed, so a chaos run is a reproducible
// regression, not a flake generator.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"aegaeon/internal/cluster"
	"aegaeon/internal/decision"
	"aegaeon/internal/fault"
	"aegaeon/internal/fleetobs"
	"aegaeon/internal/latency"
	"aegaeon/internal/market"
	"aegaeon/internal/metastore"
	"aegaeon/internal/model"
	"aegaeon/internal/obs"
	"aegaeon/internal/overload"
	"aegaeon/internal/prefixcache"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/slomon"
	"aegaeon/internal/workload"
)

// Config parameterizes one chaos run.
type Config struct {
	Seed int64
	// Models is the market size (default 4, small models).
	Models int
	// Rate is the Poisson arrival rate in requests/s (default 0.15).
	Rate float64
	// Horizon is the arrival window (default 120s); faults land inside it
	// and the run continues until the system drains.
	Horizon time.Duration
	// NumPrefill / NumDecode size the single deployment (defaults 2 / 2, so
	// single-instance crashes have somewhere to fail over to).
	NumPrefill int
	NumDecode  int
	// Spec is an explicit fault schedule ("kind@at[+dur][*factor][:target]",
	// comma-separated). Empty draws RandomFaults faults from the seed.
	Spec string
	// RandomFaults is the number of randomly drawn faults when Spec is empty
	// (default 4).
	RandomFaults int
	// Overload enables overload control for the run: a brownout controller
	// on the cluster, priorities on the trace (HighFrac/LowFrac, defaulting
	// to 0.2/0.3), and the deadline reaper — so fault schedules are audited
	// with load shedding active, not just failover.
	Overload bool
	// HighFrac / LowFrac set the priority mix when Overload is on.
	HighFrac, LowFrac float64
	// Prefix enables the global prefix cache (with cache-aware routing) and
	// switches the workload to multi-turn chat over a shared system prompt,
	// so crash recovery is audited with prefix pins, device copies, and
	// eviction in play. Rate is reinterpreted as turns/s per model (sessions
	// arrive at Rate/3, averaging ~3 turns each).
	Prefix bool
	// MarketClasses is the device-class cycle for the spot-market model
	// (default homogeneous "H800"). Every chaos run carries a market so the
	// reclaim/throttle fault kinds are injectable by random schedules;
	// heterogeneous pools are opt-in per run.
	MarketClasses string
	// Spot activates spot price traces and risk-priced placement.
	Spot bool
	// MarketNaive disables preemption-aware placement and KV evacuation, so
	// reclaims are audited through the bare crash path (the naive arm).
	MarketNaive bool
	// StoreReplicas runs the metadata store as an N-replica quorum store
	// (ms0..msN-1), records every client op, and folds the control-plane
	// audit — per-key linearizability, at-most-one-leader-per-term,
	// no-acknowledged-write-lost, watch replay in commit order — into
	// VerifyInvariants. Random schedules then also draw the replica fault
	// kinds (partition:replica, netsplit, netdelay, rcrash).
	StoreReplicas int
	// StoreClients is the number of synthetic store sessions issuing mixed
	// Set/Get/CAS/Delete traffic against a small shared keyspace, so the
	// linearizability audit sees real read/write contention beyond the
	// cluster's own lease and failover ops (default 3 when StoreReplicas >
	// 1; 0 otherwise).
	StoreClients int
}

func (c *Config) defaults() {
	if c.Models <= 0 {
		c.Models = 4
	}
	if c.Rate <= 0 {
		c.Rate = 0.15
	}
	if c.Horizon <= 0 {
		c.Horizon = 120 * time.Second
	}
	if c.NumPrefill <= 0 {
		c.NumPrefill = 2
	}
	if c.NumDecode <= 0 {
		c.NumDecode = 2
	}
	if c.RandomFaults <= 0 {
		c.RandomFaults = 4
	}
	if c.Overload && c.HighFrac == 0 && c.LowFrac == 0 {
		c.HighFrac, c.LowFrac = 0.2, 0.3
	}
	if c.StoreReplicas > 1 && c.StoreClients == 0 {
		c.StoreClients = 3
	}
}

// Result summarizes a chaos run.
type Result struct {
	Spec       string // the schedule that ran, formatted
	Requests   int
	Completed  int
	Failed     int
	Injected   int
	InjectErrs []error
	Failovers  int
	Attainment float64
	Stats      fault.Stats
	// Sheds counts overload-control rejections by reason (Overload runs only).
	Sheds map[string]int
	// Prefix snapshots the cache's end state (Prefix runs only).
	Prefix *prefixcache.Stats
	// Fleet is the utilization ledger's snapshot at the drained instant:
	// every GPU-second of the run classified, crashes included.
	Fleet *fleetobs.Snapshot
	// Market snapshots the spot-market state at the drained instant:
	// preemption records, per-device eligibility, per-class economics.
	Market *market.Snapshot
	// Decisions is the run's provenance journal: every admission, routing,
	// switch, shed, eviction, and evacuation decision with its evidence.
	Decisions *decision.Journal
	// Store snapshots the control plane at drain (StoreReplicas runs only).
	Store *metastore.ControlView
	// StoreOpsAcked / StoreOpP50 / StoreOpP99 summarize client-op latency
	// from the recorded history (StoreReplicas runs only).
	StoreOpsAcked          int
	StoreOpP50, StoreOpP99 time.Duration
	// UnavailWindows / UnavailTotal cluster the failed-op windows: the
	// measured client-visible unavailability bought by partitions and
	// leader churn (StoreReplicas runs only).
	UnavailWindows int
	UnavailTotal   time.Duration
	// Violations lists every broken invariant (empty on a clean run).
	Violations []string
}

// Run executes one seeded chaos scenario and audits the invariants.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	se := sim.NewEngine(cfg.Seed)
	f := fault.New(se, cfg.Seed+1)
	models := model.SmallMix(cfg.Models)
	clCfg := cluster.Config{
		Prof:   latency.H800(),
		SLO:    slo.Default(),
		Faults: f,
		// Every chaos run carries the fleet ledger so the GPU-second
		// conservation invariant is audited under crashes and recovery, not
		// just on clean runs.
		Fleet: fleetobs.New(se),
		// Every chaos run carries the decision journal so provenance coverage
		// is an audited invariant: each terminal request must have an
		// admission-to-terminal chain, and every shed/eviction/evacuation
		// record must carry evidence terms.
		Decisions: decision.New(decision.Options{}),
		Deployments: []cluster.DeploymentConfig{{
			Name: "chaos", TP: 1,
			NumPrefill: cfg.NumPrefill, NumDecode: cfg.NumDecode,
			Models: models,
		}},
		StoreReplicas: cfg.StoreReplicas,
		StoreSeed:     cfg.Seed + 4,
		StoreHistory:  cfg.StoreReplicas > 1,
	}
	if cfg.Overload {
		// The brownout controller needs burn-rate signals, which need the
		// observability collector feeding a monitor.
		clCfg.Obs = obs.New(obs.Options{})
		clCfg.SLOMon = slomon.New(slomon.Config{Objective: 0.99, Source: clCfg.Obs})
		clCfg.Overload = overload.NewController(overload.Config{})
	}
	if cfg.Prefix {
		clCfg.Prefix = &prefixcache.Config{Routing: true}
	}
	// Every run carries a market model so random schedules can draw the
	// reclaim/throttle fault kinds. The default — homogeneous H800, no spot
	// pricing, aware placement — is behavior-neutral for crash-only
	// schedules: with no open notices every device scores capability 1 and
	// penalty 0, so placement is unchanged.
	classes, err := market.ParseClasses(cfg.MarketClasses)
	if err != nil {
		return nil, err
	}
	clCfg.Market = market.New(se, clCfg.Fleet, market.Config{
		Classes: classes,
		Spot:    cfg.Spot,
		Aware:   !cfg.MarketNaive,
		Seed:    cfg.Seed,
	})
	c, err := cluster.New(se, clCfg)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	var trace []workload.Request
	if cfg.Prefix {
		trace = workload.MultiTurnTrace(rng, names, cfg.Rate/3, cfg.Horizon,
			workload.ShareGPT(), workload.MultiTurnConfig{MeanTurns: 3, SystemPromptTokens: 128})
	} else {
		trace = workload.PoissonTrace(rng, names, cfg.Rate, cfg.Horizon, workload.ShareGPT())
	}
	if cfg.Overload {
		workload.AssignPriorities(rng, trace, cfg.HighFrac, cfg.LowFrac)
	}
	if err := c.Submit(trace); err != nil {
		return nil, err
	}

	sched, err := schedule(cfg, c, names)
	if err != nil {
		return nil, err
	}
	in := fault.NewInjector(se, c, sched)
	in.Arm()

	if cfg.StoreClients > 0 && c.Replicated() != nil {
		startStoreClients(se, c, cfg)
	}

	// Rates feed the fleet cost integral from t=0; price ticks only run when
	// Spot is on, bounded so the event loop drains.
	clCfg.Market.Start(2*cfg.Horizon + 60*time.Second)
	se.At(0, c.StartHealth)
	// Long enough for failover of the latest possible crash; serving
	// continues past it if the tail is still draining.
	se.At(2*cfg.Horizon+60*time.Second, c.StopHealth)
	se.Run()
	c.Finalize(se.Now())

	sys := c.Deployments()[0].System
	res := &Result{
		Spec:       fault.FormatSpec(sched),
		Requests:   len(trace),
		Completed:  c.Completed(),
		Failed:     sys.FailedRequests(),
		Injected:   in.Injected(),
		InjectErrs: in.Errors(),
		Failovers:  c.Failovers(),
		Attainment: c.Attainment(),
		Stats:      c.FaultStats(),
		Violations: VerifyInvariants(c),
	}
	if cfg.Overload {
		res.Sheds = c.OverloadSheds()
	}
	if pc := sys.PrefixCache(); pc != nil {
		st := pc.Stats()
		res.Prefix = &st
	}
	res.Fleet = c.Fleet().Snapshot(se.Now())
	res.Market = c.Market().Snapshot(se.Now(), res.Fleet)
	res.Decisions = c.Decisions()
	if rep := c.Replicated(); rep != nil {
		view := rep.View()
		res.Store = &view
		res.StoreOpsAcked, res.StoreOpP50, res.StoreOpP99 = rep.OpLatency()
		res.UnavailWindows, res.UnavailTotal = rep.Unavailability(time.Second)
	}
	return res, nil
}

// startStoreClients arms the synthetic store workload: StoreClients seeded
// sessions issuing mixed ops on a 4-key space from t=2s to the horizon.
// Writes carry session-unique values so the linearizability witness search
// can tell every write apart; CAS guesses chase each session's last
// observed value, so swaps genuinely race across sessions.
func startStoreClients(se *sim.Engine, c *cluster.Cluster, cfg Config) {
	rep := c.Replicated()
	for i := 0; i < cfg.StoreClients; i++ {
		i := i
		sess := rep.Session(fmt.Sprintf("cli%d", i))
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(i)))
		lastSeen := map[string]string{}
		seq := 0
		var step func()
		step = func() {
			if se.Now() > cfg.Horizon {
				return
			}
			key := fmt.Sprintf("lin/k%d", rng.Intn(4))
			switch p := rng.Float64(); {
			case p < 0.40:
				seq++
				val := fmt.Sprintf("c%d-%d", i, seq)
				sess.SetE(key, val, func(err error) {
					if err == nil {
						lastSeen[key] = val
					}
				})
			case p < 0.65:
				sess.GetE(key, func(v string, ok bool, err error) {
					if err == nil && ok {
						lastSeen[key] = v
					}
				})
			case p < 0.80:
				sess.GetSession(key, func(v string, ok bool, err error) {
					if err == nil && ok {
						lastSeen[key] = v
					}
				})
			case p < 0.93:
				seq++
				val := fmt.Sprintf("c%d-%d", i, seq)
				sess.CompareAndSwap(key, lastSeen[key], val, func(swapped bool, err error) {
					if err == nil && swapped {
						lastSeen[key] = val
					}
				})
			default:
				sess.DeleteE(key, func(err error) {
					if err == nil {
						delete(lastSeen, key)
					}
				})
			}
			se.After(200*time.Millisecond+time.Duration(rng.Int63n(int64(400*time.Millisecond))), step)
		}
		se.At(2*time.Second+time.Duration(i)*50*time.Millisecond, step)
	}
}

// schedule resolves the fault schedule for a run: the explicit spec, or a
// seeded random draw over the cluster's instances and models.
func schedule(cfg Config, c *cluster.Cluster, names []string) ([]fault.Fault, error) {
	if cfg.Spec != "" {
		return fault.ParseSpec(cfg.Spec)
	}
	var instances []string
	for _, d := range c.Deployments() {
		for _, n := range d.System.InstanceNames() {
			instances = append(instances, d.Name+"/"+n)
		}
	}
	var replicas []string
	if rep := c.Replicated(); rep != nil {
		replicas = rep.ReplicaNames()
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	return fault.RandomSchedule(rng, cfg.Horizon, instances, names, replicas, cfg.RandomFaults), nil
}

// VerifyInvariants audits a drained cluster against the recovery guarantees.
// Call after the simulation has run to completion.
func VerifyInvariants(c *cluster.Cluster) []string {
	var v []string
	for _, d := range c.Deployments() {
		sys := d.System
		if n := sys.OrphanedRequests(); n != 0 {
			v = append(v, fmt.Sprintf("%s: %d orphans never recovered", d.Name, n))
		}
		done, failed := 0, 0
		for _, r := range sys.Requests() {
			switch {
			case r.Done && r.Failed:
				v = append(v, fmt.Sprintf("request %s is both Done and Failed", r.ID))
			case r.Done:
				done++
				if len(r.TokenTimes) != r.OutputTokens {
					v = append(v, fmt.Sprintf("request %s completed with %d/%d tokens (lost or duplicated)",
						r.ID, len(r.TokenTimes), r.OutputTokens))
				}
			case r.Failed:
				failed++
				if r.FailReason == "" {
					v = append(v, fmt.Sprintf("request %s failed without a reason", r.ID))
				}
			case r.Aborted():
				// Client-cancelled (or reaped) requests are a valid terminal
				// state; their KV leak check happens below like everyone's.
			default:
				v = append(v, fmt.Sprintf("request %s reached no terminal state", r.ID))
			}
			for i := 1; i < len(r.TokenTimes); i++ {
				if r.TokenTimes[i] < r.TokenTimes[i-1] {
					v = append(v, fmt.Sprintf("request %s: token %d emitted before token %d", r.ID, i, i-1))
					break
				}
			}
		}
		if done != sys.Completed() || failed != sys.FailedRequests() {
			v = append(v, fmt.Sprintf("%s: terminal counts drifted (done %d vs %d, failed %d vs %d)",
				d.Name, done, sys.Completed(), failed, sys.FailedRequests()))
		}
		// With the prefix cache on, a drained pool is not empty: it holds
		// exactly the cache's accounted residency — anything beyond that is a
		// leak, anything short a double-free.
		pc := sys.PrefixCache()
		for _, e := range sys.Engines() {
			if !sys.AliveNamed(e.Name) {
				continue // a dead instance's VRAM died with it
			}
			var wantGPU int64
			if pc != nil {
				wantGPU = pc.DeviceResidentBytes(e.Name)
			}
			if used := e.KV().GPUCache.Pool().UsedBytes(); used != wantGPU {
				v = append(v, fmt.Sprintf("%s/%s GPU KV pool holds %d bytes, prefix cache accounts %d (leak or double-free)",
					d.Name, e.Name, used, wantGPU))
			}
			if n := e.KV().MoveListLen(); n != 0 {
				v = append(v, fmt.Sprintf("%s/%s move list still holds %d entries", d.Name, e.Name, n))
			}
		}
		// The unified CPU KV cache is shared; any engine's manager sees it.
		if es := sys.Engines(); len(es) > 0 {
			var wantCPU int64
			if pc != nil {
				wantCPU = pc.HostResidentBytes()
			}
			if used := es[0].KV().CPUCache.Pool().UsedBytes(); used != wantCPU {
				v = append(v, fmt.Sprintf("%s CPU KV pool holds %d bytes, prefix cache accounts %d (leak or double-free)",
					d.Name, used, wantCPU))
			}
		}
		if pc != nil {
			// Refcounts must return to steady state: nothing in flight, so
			// nothing pinned, and the index's internal accounting must audit
			// clean even after crashes dropped device tiers mid-chain.
			if n := pc.PinnedEntries(); n != 0 {
				v = append(v, fmt.Sprintf("%s: %d prefix entries still pinned after drain", d.Name, n))
			}
			for _, bad := range pc.CheckConsistency() {
				v = append(v, fmt.Sprintf("%s: prefix cache: %s", d.Name, bad))
			}
		}
	}
	v = append(v, verifyFleet(c)...)
	v = append(v, verifyMarket(c)...)
	v = append(v, verifyDecisions(c)...)
	v = append(v, verifyControlPlane(c)...)
	return v
}

// verifyControlPlane audits the metadata store after a chaos run. In both
// store modes the cluster's watch-fed route mirror must have converged to the
// store's committed routing table. With a replicated store it also replays
// the recorded history through the full control-plane checker: per-key
// linearizability against a legal sequential witness, at most one leader per
// term, no acknowledged write lost, gapless commit sequence, watch delivery
// in commit order, and session reads at or above their floor.
func verifyControlPlane(c *cluster.Cluster) []string {
	var v []string
	routes := c.Routes()
	mirror := c.RouteMirror()
	for m, want := range routes {
		if got, ok := mirror[m]; !ok || got != want {
			v = append(v, fmt.Sprintf("store: route mirror diverged for %s (mirror %q, store %q)", m, got, want))
		}
	}
	for m := range mirror {
		if _, ok := routes[m]; !ok {
			v = append(v, fmt.Sprintf("store: route mirror holds %s but the store does not", m))
		}
	}
	if rep := c.Replicated(); rep != nil {
		for _, bad := range rep.CheckControlPlane() {
			v = append(v, "store: "+bad)
		}
	}
	return v
}

// verifyDecisions audits decision-provenance coverage after a chaos run:
// every terminal request's chain must run from an admission record to a
// terminal record matching the request's actual end state, and every
// retained shed, eviction, or evacuation record must carry the evidence
// terms that explain it. No-op when the cluster was built without a journal.
func verifyDecisions(c *cluster.Cluster) []string {
	j := c.Decisions()
	if j == nil {
		return nil
	}
	var states []decision.RequestState
	for _, d := range c.Deployments() {
		for _, r := range d.System.Requests() {
			switch {
			case r.Done:
				states = append(states, decision.RequestState{ID: r.ID, Outcome: decision.OutcomeDone})
			case r.Failed:
				states = append(states, decision.RequestState{ID: r.ID, Outcome: decision.OutcomeFailed})
			case r.Aborted():
				states = append(states, decision.RequestState{ID: r.ID, Outcome: decision.OutcomeAborted})
				// Non-terminal requests are already flagged by the terminal-state
				// audit above; the journal has nothing to say about them.
			}
		}
	}
	return j.CheckCoverage(states)
}

// verifyMarket audits the spot-market accounting after a chaos run: the
// cumulative counters reconcile against the per-preemption audit trail, every
// revoked device is actually dead (and ineligible for placement), and no
// evacuation transfer is left pending — each one either landed before the
// deadline or its request went through the crash path. No-op when the cluster
// was built without a market.
func verifyMarket(c *cluster.Cluster) []string {
	mkt := c.Market()
	if mkt == nil {
		return nil
	}
	var v []string
	st := mkt.Stats()
	recs := mkt.Records()
	if st.Preemptions != len(recs) {
		v = append(v, fmt.Sprintf("market: %d preemptions counted but %d records kept", st.Preemptions, len(recs)))
	}
	var evac, lost, rehomed int64
	revoked, missed := 0, 0
	for _, r := range recs {
		evac += r.EvacuatedKVBytes
		lost += r.LostKVBytes
		rehomed += r.RehomedPrefixBytes
		if r.RevokedAtS >= 0 {
			revoked++
			if deadlineS := r.NoticeAtS + r.GraceS; r.RevokedAtS < deadlineS-1e-9 {
				v = append(v, fmt.Sprintf("market: %s revoked at %.3fs, before its %.3fs deadline", r.Device, r.RevokedAtS, deadlineS))
			}
		} else if r.LostKVBytes > 0 {
			v = append(v, fmt.Sprintf("market: %s lost %d KV bytes without being revoked", r.Device, r.LostKVBytes))
		}
		if r.LostKVBytes > 0 {
			missed++
		}
	}
	if revoked != st.Revocations {
		v = append(v, fmt.Sprintf("market: %d revocations counted but %d records closed", st.Revocations, revoked))
	}
	if missed != st.DeadlinesMissed {
		v = append(v, fmt.Sprintf("market: %d deadlines-missed counted but %d records lost KV", st.DeadlinesMissed, missed))
	}
	if evac != st.EvacuatedKVBytes || lost != st.LostKVBytes || rehomed != st.RehomedPrefixBytes {
		v = append(v, fmt.Sprintf("market: byte totals drifted from records (evac %d vs %d, lost %d vs %d, rehomed %d vs %d)",
			st.EvacuatedKVBytes, evac, st.LostKVBytes, lost, st.RehomedPrefixBytes, rehomed))
	}
	for _, d := range c.Deployments() {
		if n := d.System.EvacuatingRequests(); n != 0 {
			v = append(v, fmt.Sprintf("market: %s still has %d evacuation transfers pending after drain", d.Name, n))
		}
	}
	for _, r := range recs {
		if r.RevokedAtS < 0 {
			continue
		}
		alive := false
		for _, d := range c.Deployments() {
			for _, name := range d.System.InstanceNames() {
				if name == r.Device && d.System.AliveNamed(name) {
					alive = true
				}
			}
		}
		if alive {
			v = append(v, fmt.Sprintf("market: revoked device %s is still alive", r.Device))
		}
		if mkt.Eligible(r.Device) {
			v = append(v, fmt.Sprintf("market: revoked device %s is still placement-eligible", r.Device))
		}
	}
	return v
}

// verifyFleet audits the fleet ledger's GPU-second accounting after a chaos
// run: the conservation invariant holds at the drained instant (state
// integrals sum exactly to wall time on every device, so crashes neither
// double-count nor lose GPU-seconds), and every crashed instance is parked
// in the faulted state with nonzero faulted time. No-op when the cluster was
// built without a ledger.
func verifyFleet(c *cluster.Cluster) []string {
	fl := c.Fleet()
	if fl == nil {
		return nil
	}
	var v []string
	now := c.VirtualNow()
	for _, bad := range fl.CheckConservation(now) {
		v = append(v, "fleet ledger: "+bad)
	}
	snap := fl.Snapshot(now)
	byName := map[string]*fleetobs.DeviceSnapshot{}
	for i := range snap.Devices {
		byName[snap.Devices[i].Device] = &snap.Devices[i]
	}
	for _, d := range c.Deployments() {
		for _, name := range d.System.InstanceNames() {
			ds := byName[name]
			if ds == nil {
				v = append(v, fmt.Sprintf("fleet ledger: instance %s/%s never registered", d.Name, name))
				continue
			}
			if d.System.AliveNamed(name) {
				if ds.Faulted {
					v = append(v, fmt.Sprintf("fleet ledger: live instance %s/%s marked faulted", d.Name, name))
				}
				continue
			}
			if !ds.Faulted {
				v = append(v, fmt.Sprintf("fleet ledger: crashed instance %s/%s not marked faulted", d.Name, name))
			}
			if ds.Current != fleetobs.Faulted.String() {
				v = append(v, fmt.Sprintf("fleet ledger: crashed instance %s/%s charged to %s, want faulted",
					d.Name, name, ds.Current))
			}
			if ds.StatesS[fleetobs.Faulted.String()] <= 0 {
				v = append(v, fmt.Sprintf("fleet ledger: crashed instance %s/%s accumulated no faulted time",
					d.Name, name))
			}
		}
	}
	return v
}
