// Package overload implements SLO-coupled brownout control: a small state
// machine that consumes the live monitor's burn-rate alert state and steps
// the fleet through declared degradation levels — shed low-priority work,
// shrink decode lengths, freeze cold-model loads, and finally admit nothing
// — instead of letting overload collapse every request's SLO at once. The
// ladder is deliberately ordered from cheapest to most drastic, and both
// directions carry hysteresis holds so a noisy burn signal cannot flap the
// fleet between levels.
//
// The controller is passive: it never acts on the system itself. Admission
// paths (the gateway's tryAdmit, core's arrival check) consult the policy
// getters and enforce whatever the current level demands. All getters are
// nil-safe — a nil *Controller behaves as LevelNormal, keeping the default
// serving path free of overload checks.
package overload

import (
	"sync"
	"time"

	"aegaeon/internal/sim"
)

// Level is one rung of the degradation ladder. Higher levels include every
// restriction of the levels below them.
type Level int

const (
	// LevelNormal: no degradation; all admission checks pass through.
	LevelNormal Level = iota
	// LevelShedLow: reject new low-priority requests.
	LevelShedLow
	// LevelShrink: additionally cap requested decode lengths.
	LevelShrink
	// LevelFreeze: additionally refuse requests to cold models (ones with
	// no admitted work), since serving them would force a model switch.
	LevelFreeze
	// LevelAdmitNone: admit nothing; only in-flight work drains.
	LevelAdmitNone
)

const maxLevel = LevelAdmitNone

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelShedLow:
		return "shed-low"
	case LevelShrink:
		return "shrink"
	case LevelFreeze:
		return "freeze"
	case LevelAdmitNone:
		return "admit-none"
	}
	return "unknown"
}

// Config parameterizes the controller. Zero values take the defaults noted.
type Config struct {
	// EscalateHold is the minimum dwell time at a level before the next
	// page signal may push it one rung higher (default 5s). The first
	// escalation out of LevelNormal is immediate: when the fleet starts
	// paging there is no reason to wait before shedding the cheapest tier.
	EscalateHold time.Duration
	// RecoverHold is how long the burn signal must stay clear (neither
	// page nor warn) before the controller steps down one rung — and how
	// long it then waits again before the next step (default 15s).
	// Recovery is deliberately slower than escalation: re-admitting load
	// into a fleet that just stopped burning is how incidents relapse.
	RecoverHold time.Duration
	// ShrinkScale is the fraction of the requested decode length granted
	// at LevelShrink and above, in (0,1] (default 0.75: decode is rarely the
	// bottleneck under switch-dominated overload, so a gentle trim preserves
	// goodput while still signalling degradation).
	ShrinkScale float64
}

func (c *Config) applyDefaults() {
	if c.EscalateHold <= 0 {
		c.EscalateHold = 5 * time.Second
	}
	if c.RecoverHold <= 0 {
		c.RecoverHold = 15 * time.Second
	}
	if c.ShrinkScale <= 0 || c.ShrinkScale > 1 {
		c.ShrinkScale = 0.75
	}
}

// Signals is one observation of fleet pressure, fed to Step.
type Signals struct {
	// Page and Warn mirror the slomon fleet alert state: Page drives
	// escalation, Warn holds the current level (neither lets it recover).
	Page bool
	Warn bool
	// FastBurn is the fleet's fast-window burn rate, recorded on
	// transitions for post-incident review. It does not gate decisions.
	FastBurn float64
}

// Transition records one level change.
type Transition struct {
	At       sim.Time `json:"at_ns"`
	From     Level    `json:"-"`
	To       Level    `json:"-"`
	FromName string   `json:"from"`
	ToName   string   `json:"to"`
	// Burn is the fast-window burn rate observed at the transition.
	Burn float64 `json:"burn"`
}

// maxTransitions bounds the retained history; a long-running gateway keeps
// the most recent window, which is what an incident review needs.
const maxTransitions = 64

// Controller is the brownout state machine. Safe for concurrent use; all
// methods are nil-safe (a nil controller reads as LevelNormal).
type Controller struct {
	mu  sync.Mutex
	cfg Config

	level       Level
	lastChange  sim.Time // when level last changed
	calm        bool     // a clear (no page/warn) streak is running
	calmSince   sim.Time // when the current clear streak began
	steps       uint64
	transitions []Transition
}

// NewController builds a controller at LevelNormal.
func NewController(cfg Config) *Controller {
	cfg.applyDefaults()
	return &Controller{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Step feeds one pressure observation and returns the (possibly updated)
// level. Time must be monotone across calls; out-of-order observations are
// ignored.
func (c *Controller) Step(now sim.Time, sig Signals) Level {
	if c == nil {
		return LevelNormal
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps++
	if sig.Page || sig.Warn {
		c.calm = false
	} else if !c.calm {
		c.calm = true
		c.calmSince = now
	}
	switch {
	case sig.Page && c.level < maxLevel:
		// Escalate: immediately out of Normal, then one rung per
		// EscalateHold while the page persists.
		if c.level == LevelNormal || now-c.lastChange >= sim.Time(c.cfg.EscalateHold) {
			c.setLevelLocked(now, c.level+1, sig.FastBurn)
		}
	case c.calm && c.level > LevelNormal:
		// Recover: one rung per RecoverHold of sustained clear signal.
		if now-c.calmSince >= sim.Time(c.cfg.RecoverHold) && now-c.lastChange >= sim.Time(c.cfg.RecoverHold) {
			c.setLevelLocked(now, c.level-1, sig.FastBurn)
		}
	}
	return c.level
}

// setLevelLocked must be called with c.mu held.
func (c *Controller) setLevelLocked(now sim.Time, to Level, burn float64) {
	tr := Transition{At: now, From: c.level, To: to,
		FromName: c.level.String(), ToName: to.String(), Burn: burn}
	c.level = to
	c.lastChange = now
	if len(c.transitions) >= maxTransitions {
		copy(c.transitions, c.transitions[1:])
		c.transitions = c.transitions[:len(c.transitions)-1]
	}
	c.transitions = append(c.transitions, tr)
}

// Level returns the current degradation level (LevelNormal on nil).
func (c *Controller) Level() Level {
	if c == nil {
		return LevelNormal
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// ShedLow reports whether new low-priority requests must be rejected.
func (c *Controller) ShedLow() bool { return c.Level() >= LevelShedLow }

// FreezeCold reports whether requests to cold models must be rejected.
func (c *Controller) FreezeCold() bool { return c.Level() >= LevelFreeze }

// AdmitNone reports whether all new requests must be rejected.
func (c *Controller) AdmitNone() bool { return c.Level() >= LevelAdmitNone }

// OutputCap applies the LevelShrink decode-length cap to a requested output
// length, returning the granted length (at least 1 token).
func (c *Controller) OutputCap(requested int) int {
	if c == nil || requested <= 1 {
		return requested
	}
	c.mu.Lock()
	level, scale := c.level, c.cfg.ShrinkScale
	c.mu.Unlock()
	if level < LevelShrink {
		return requested
	}
	capped := int(float64(requested) * scale)
	if capped < 1 {
		capped = 1
	}
	return capped
}

// Snapshot is the controller's externally visible state, served by
// /debug/overload and folded into Report.
type Snapshot struct {
	Level       string       `json:"level"`
	LevelValue  int          `json:"level_value"`
	SinceS      float64      `json:"since_s"` // virtual time of the last change
	Steps       uint64       `json:"steps"`
	Transitions []Transition `json:"transitions"`
}

// Snapshot returns a copy of the controller state (zero value on nil).
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{Level: LevelNormal.String()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Level:       c.level.String(),
		LevelValue:  int(c.level),
		SinceS:      time.Duration(c.lastChange).Seconds(),
		Steps:       c.steps,
		Transitions: append([]Transition(nil), c.transitions...),
	}
}
