package overload

import (
	"sync"
	"testing"
	"time"
)

func sec(s int) time.Duration { return time.Duration(s) * time.Second }

// TestEscalateRecoverArc is the golden transition test: a sustained page
// climbs the full ladder one hysteresis hold at a time, a warn plateau holds
// the level without escalating further, and a sustained clear signal walks
// back down to normal one RecoverHold per rung.
func TestEscalateRecoverArc(t *testing.T) {
	c := NewController(Config{EscalateHold: 5 * time.Second, RecoverHold: 15 * time.Second})
	page := Signals{Page: true, Warn: true, FastBurn: 20}
	warn := Signals{Warn: true, FastBurn: 5}
	clear := Signals{FastBurn: 0.1}

	script := []struct {
		at   time.Duration
		sig  Signals
		want Level
	}{
		{sec(0), clear, LevelNormal},
		{sec(1), page, LevelShedLow}, // first page escalates immediately
		{sec(2), page, LevelShedLow}, // EscalateHold not yet elapsed
		{sec(6), page, LevelShrink},
		{sec(8), page, LevelShrink},
		{sec(11), page, LevelFreeze},
		{sec(16), page, LevelAdmitNone},
		{sec(21), page, LevelAdmitNone}, // ladder is capped
		{sec(22), warn, LevelAdmitNone}, // warn holds, never escalates
		{sec(30), warn, LevelAdmitNone},
		{sec(31), clear, LevelAdmitNone}, // clear streak starts
		{sec(40), clear, LevelAdmitNone}, // 9s clear < RecoverHold
		{sec(46), clear, LevelFreeze},    // 15s clear: step down
		{sec(50), clear, LevelFreeze},
		{sec(61), clear, LevelShrink},
		{sec(76), clear, LevelShedLow},
		{sec(91), clear, LevelNormal},
		{sec(120), clear, LevelNormal},
	}
	for _, step := range script {
		if got := c.Step(step.at, step.sig); got != step.want {
			t.Fatalf("t=%v: level = %v, want %v", step.at, got, step.want)
		}
	}

	snap := c.Snapshot()
	if snap.Level != "normal" {
		t.Fatalf("final level = %q, want normal", snap.Level)
	}
	wantArc := []struct{ from, to Level }{
		{LevelNormal, LevelShedLow},
		{LevelShedLow, LevelShrink},
		{LevelShrink, LevelFreeze},
		{LevelFreeze, LevelAdmitNone},
		{LevelAdmitNone, LevelFreeze},
		{LevelFreeze, LevelShrink},
		{LevelShrink, LevelShedLow},
		{LevelShedLow, LevelNormal},
	}
	if len(snap.Transitions) != len(wantArc) {
		t.Fatalf("got %d transitions, want %d: %+v", len(snap.Transitions), len(wantArc), snap.Transitions)
	}
	for i, tr := range snap.Transitions {
		if tr.From != wantArc[i].from || tr.To != wantArc[i].to {
			t.Errorf("transition %d: %v→%v, want %v→%v", i, tr.From, tr.To, wantArc[i].from, wantArc[i].to)
		}
		if tr.FromName != tr.From.String() || tr.ToName != tr.To.String() {
			t.Errorf("transition %d: names %q→%q do not match levels", i, tr.FromName, tr.ToName)
		}
	}
}

// TestFlappingSignalHeldByHysteresis checks that a page/clear signal
// alternating faster than the holds cannot flap the level: escalation
// happens once, and recovery never starts because the clear streak keeps
// being reset.
func TestFlappingSignalHeldByHysteresis(t *testing.T) {
	c := NewController(Config{EscalateHold: 5 * time.Second, RecoverHold: 15 * time.Second})
	for s := 0; s < 60; s++ {
		sig := Signals{Page: s%2 == 0}
		c.Step(sec(s), sig)
	}
	// Pages every other second: each page arrives with only 1s of clear
	// before it, so recovery never fires; escalation proceeds one rung per
	// EscalateHold on the paging half of the signal.
	if got := c.Level(); got != LevelAdmitNone {
		t.Fatalf("level after sustained flapping = %v, want %v", got, LevelAdmitNone)
	}
	snap := c.Snapshot()
	for _, tr := range snap.Transitions {
		if tr.To < tr.From {
			t.Fatalf("flapping signal caused a recovery transition %v→%v", tr.From, tr.To)
		}
	}
}

// TestPolicyGetters pins the level → policy mapping, including nil safety.
func TestPolicyGetters(t *testing.T) {
	var nilC *Controller
	if nilC.Level() != LevelNormal || nilC.ShedLow() || nilC.FreezeCold() || nilC.AdmitNone() {
		t.Fatal("nil controller must behave as LevelNormal")
	}
	if got := nilC.OutputCap(100); got != 100 {
		t.Fatalf("nil OutputCap(100) = %d", got)
	}
	if nilC.Step(sec(1), Signals{Page: true}) != LevelNormal {
		t.Fatal("nil Step must return LevelNormal")
	}

	c := NewController(Config{ShrinkScale: 0.25})
	cases := []struct {
		level   Level
		shedLow bool
		freeze  bool
		none    bool
		out100  int
	}{
		{LevelNormal, false, false, false, 100},
		{LevelShedLow, true, false, false, 100},
		{LevelShrink, true, false, false, 25},
		{LevelFreeze, true, true, false, 25},
		{LevelAdmitNone, true, true, true, 25},
	}
	for _, tc := range cases {
		c.mu.Lock()
		c.level = tc.level
		c.mu.Unlock()
		if c.ShedLow() != tc.shedLow || c.FreezeCold() != tc.freeze || c.AdmitNone() != tc.none {
			t.Errorf("%v: policy getters = (%v,%v,%v), want (%v,%v,%v)", tc.level,
				c.ShedLow(), c.FreezeCold(), c.AdmitNone(), tc.shedLow, tc.freeze, tc.none)
		}
		if got := c.OutputCap(100); got != tc.out100 {
			t.Errorf("%v: OutputCap(100) = %d, want %d", tc.level, got, tc.out100)
		}
	}
	if got := c.OutputCap(1); got != 1 {
		t.Errorf("OutputCap(1) = %d, want 1 (never below one token)", got)
	}
}

// TestControllerConcurrency exercises Step and the getters under the race
// detector.
func TestControllerConcurrency(t *testing.T) {
	c := NewController(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					c.Step(sec(i), Signals{Page: i%3 == 0})
				} else {
					_ = c.Level()
					_ = c.OutputCap(64)
					_ = c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
}
