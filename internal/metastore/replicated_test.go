package metastore

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"aegaeon/internal/sim"
)

// newRep builds a recording 3-replica store and returns it with its engine.
// Every test must schedule rep.Stop() (or call stopAt) before eng.Run, or the
// election timers keep the event queue alive forever.
func newRep(seed int64) (*sim.Engine, *Replicated) {
	eng := sim.NewEngine(seed)
	rep := NewReplicated(eng, RepConfig{Replicas: 3, Seed: seed, RecordHistory: true})
	return eng, rep
}

func stopAt(eng *sim.Engine, rep *Replicated, at sim.Time) {
	eng.At(at, rep.Stop)
}

func audit(t *testing.T, rep *Replicated) {
	t.Helper()
	for _, bad := range rep.CheckControlPlane() {
		t.Errorf("audit: %s", bad)
	}
}

func TestQuorumBasicOps(t *testing.T) {
	eng, rep := newRep(1)
	var acks []string
	eng.At(time.Second, func() {
		rep.SetE("a", "1", func(err error) {
			if err != nil {
				t.Errorf("SetE: %v", err)
			}
			acks = append(acks, "set")
		})
	})
	eng.At(2*time.Second, func() {
		rep.GetE("a", func(v string, ok bool, err error) {
			if err != nil || !ok || v != "1" {
				t.Errorf("GetE = (%q,%v,%v)", v, ok, err)
			}
			acks = append(acks, "get")
		})
		rep.CompareAndSwap("a", "1", "2", func(swapped bool, err error) {
			if err != nil || !swapped {
				t.Errorf("CAS = (%v,%v)", swapped, err)
			}
			acks = append(acks, "cas")
		})
		rep.CompareAndSwap("a", "stale", "3", func(swapped bool, err error) {
			if err != nil || swapped {
				t.Errorf("stale CAS = (%v,%v)", swapped, err)
			}
			acks = append(acks, "cas2")
		})
	})
	eng.At(3*time.Second, func() {
		rep.Delete("a", func() { acks = append(acks, "del") })
	})
	stopAt(eng, rep, 5*time.Second)
	eng.Run()
	if len(acks) != 5 {
		t.Fatalf("acks = %v", acks)
	}
	if _, ok := rep.GetNow("a"); ok {
		t.Fatal("key survived delete")
	}
	if rep.Version("a") != 3 {
		t.Fatalf("version = %d, want 3 (set, cas, delete)", rep.Version("a"))
	}
	if rep.Leader() == "" {
		t.Fatal("no leader elected")
	}
	audit(t, rep)
}

func TestStableLeaderWithoutFaults(t *testing.T) {
	eng, rep := newRep(2)
	stopAt(eng, rep, 30*time.Second)
	eng.Run()
	if rep.LeaderChanges() != 1 {
		t.Fatalf("leader changed %d times on a quiet run", rep.LeaderChanges())
	}
	audit(t, rep)
}

func TestLeaderCrashFailover(t *testing.T) {
	eng, rep := newRep(3)
	acked := 0
	// A steady write stream across the crash: every 200ms from t=1s to t=9s.
	for i := 0; i < 40; i++ {
		i := i
		eng.At(sim.Time(i)*200*time.Millisecond+time.Second, func() {
			rep.SetE(fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i), func(err error) {
				if err == nil {
					acked++
				}
			})
		})
	}
	eng.At(4*time.Second, func() {
		lead := rep.Leader()
		if lead == "" {
			t.Fatal("no leader to crash")
		}
		if err := rep.CrashReplica(lead, 0); err != nil {
			t.Fatal(err)
		}
	})
	stopAt(eng, rep, 15*time.Second)
	eng.Run()
	if rep.LeaderChanges() < 2 {
		t.Fatalf("leader changes = %d, want >= 2", rep.LeaderChanges())
	}
	// The two survivors are a majority: the stream must keep acking after the
	// crash (a handful of ops can time out across the election).
	if acked < 30 {
		t.Fatalf("only %d/40 writes acked across a single crash", acked)
	}
	audit(t, rep)
}

func TestMinorityPartitionHeals(t *testing.T) {
	eng, rep := newRep(4)
	acked, failed := 0, 0
	for i := 0; i < 40; i++ {
		i := i
		eng.At(sim.Time(i)*200*time.Millisecond+time.Second, func() {
			rep.SetE("k", fmt.Sprintf("v%d", i), func(err error) {
				if err == nil {
					acked++
				} else {
					failed++
				}
			})
		})
	}
	eng.At(3*time.Second, func() {
		if err := rep.PartitionReplica(rep.Leader(), 2*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	stopAt(eng, rep, 15*time.Second)
	eng.Run()
	if acked < 25 {
		t.Fatalf("only %d/40 writes acked across a healed partition", acked)
	}
	audit(t, rep)
}

func TestNetsplitMajoritySideServes(t *testing.T) {
	eng, rep := newRep(5)
	acked := 0
	for i := 0; i < 40; i++ {
		i := i
		eng.At(sim.Time(i)*200*time.Millisecond+time.Second, func() {
			rep.SetE("k", fmt.Sprintf("v%d", i), func(err error) {
				if err == nil {
					acked++
				}
			})
		})
	}
	eng.At(3*time.Second, func() {
		if err := rep.Netsplit([]string{"ms0"}, []string{"ms1", "ms2"}, 3*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	stopAt(eng, rep, 15*time.Second)
	eng.Run()
	if acked < 25 {
		t.Fatalf("only %d/40 writes acked across a netsplit", acked)
	}
	audit(t, rep)
}

func TestCrashedReplicaCatchesUp(t *testing.T) {
	eng, rep := newRep(6)
	for i := 0; i < 40; i++ {
		i := i
		eng.At(sim.Time(i)*200*time.Millisecond+time.Second, func() {
			rep.SetE(fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i), nil)
		})
	}
	eng.At(2*time.Second, func() {
		// Crash a follower; it restarts at t=6s and must replay the log it
		// missed.
		name := rep.ReplicaNames()[0]
		if name == rep.Leader() {
			name = rep.ReplicaNames()[1]
		}
		if err := rep.CrashReplica(name, 4*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	stopAt(eng, rep, 20*time.Second)
	eng.Run()
	view := rep.View()
	for _, r := range view.Replicas {
		if !r.Up {
			t.Errorf("replica %s still down after restart window", r.Name)
		}
		if r.Applied != view.CommitIndex {
			t.Errorf("replica %s applied %d, commit index %d — catch-up incomplete",
				r.Name, r.Applied, view.CommitIndex)
		}
	}
	audit(t, rep)
}

func TestSessionReadYourWrites(t *testing.T) {
	eng, rep := newRep(7)
	s := rep.Session("client-a")
	reads := 0
	for i := 0; i < 20; i++ {
		i := i
		eng.At(sim.Time(i)*300*time.Millisecond+time.Second, func() {
			val := fmt.Sprintf("v%d", i)
			s.SetE("ryw", val, func(err error) {
				if err != nil {
					return
				}
				// Immediately read back through the session: the home replica
				// must not serve a state older than the acked write.
				s.GetSession("ryw", func(v string, ok bool, err error) {
					if err != nil {
						return
					}
					reads++
					if !ok {
						t.Errorf("read-your-writes: wrote %q, read absent", val)
						return
					}
					// A *newer* value is legal (another writer may run); older
					// is not. Values are ordered by index suffix here.
					var wrote, got int
					fmt.Sscanf(val, "v%d", &wrote)
					fmt.Sscanf(v, "v%d", &got)
					if got < wrote {
						t.Errorf("read-your-writes: wrote %q, read stale %q", val, v)
					}
				})
			})
		})
	}
	stopAt(eng, rep, 15*time.Second)
	eng.Run()
	if reads < 15 {
		t.Fatalf("only %d/20 session reads served", reads)
	}
	audit(t, rep)
}

func TestWatchReplayInCommitOrder(t *testing.T) {
	eng, rep := newRep(8)
	var seen []string
	rep.Watch("w/", func(k, v string) { seen = append(seen, k+"="+v) })
	for i := 0; i < 30; i++ {
		i := i
		eng.At(sim.Time(i)*200*time.Millisecond+time.Second, func() {
			rep.SetE(fmt.Sprintf("w/k%d", i%3), fmt.Sprintf("v%d", i), nil)
		})
	}
	// A leader crash mid-stream: deliveries must still replay the commit
	// sequence exactly once, in order.
	eng.At(3*time.Second, func() {
		if rep.Leader() != "" {
			rep.CrashReplica(rep.Leader(), 5*time.Second)
		}
	})
	stopAt(eng, rep, 15*time.Second)
	eng.Run()

	// Reconstruct the expected delivery list from the committed sequence.
	var want []string
	for _, c := range rep.Commits() {
		if c.Applied && strings.HasPrefix(c.Key, "w/") {
			switch c.Kind {
			case opSet, opCAS:
				want = append(want, c.Key+"="+c.Value)
			case opDelete:
				want = append(want, c.Key+"=")
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("watch delivered %d events, commits hold %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("delivery %d = %q, commit order wants %q", i, seen[i], want[i])
		}
	}
	audit(t, rep)
}

// Lease-edge race: two sessions CAS-race one key while the leader is cut off,
// with the heal landing mid-race. Exactly one claim may win, and the audit
// must hold even though the losing client saw retries and redirects.
func TestCASRaceAcrossPartitionHeal(t *testing.T) {
	eng, rep := newRep(9)
	a, b := rep.Session("racer-a"), rep.Session("racer-b")
	var wins, losses int
	eng.At(2*time.Second, func() {
		// Cut the leader off just before both claims go out; the heal at
		// t=3.5s lands while the clients are still retrying.
		if err := rep.PartitionReplica(rep.Leader(), 1500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	claim := func(s *Session, val string) {
		s.CompareAndSwap("claim", "", val, func(swapped bool, err error) {
			if err != nil {
				return
			}
			if swapped {
				wins++
			} else {
				losses++
			}
		})
	}
	eng.At(2*time.Second+time.Millisecond, func() { claim(a, "a") })
	eng.At(2*time.Second+time.Millisecond, func() { claim(b, "b") })
	stopAt(eng, rep, 10*time.Second)
	eng.Run()
	if wins > 1 {
		t.Fatalf("%d CAS claims won on one empty key", wins)
	}
	if wins == 1 {
		v, ok := rep.GetNow("claim")
		if !ok || (v != "a" && v != "b") {
			t.Fatalf("claimed key = (%q,%v)", v, ok)
		}
	}
	audit(t, rep)
}

// Lease-edge race: a CAS issued in the same tick the leader crashes — the
// lease is still live when the op arrives, dead before it commits. The op
// must either fail or commit exactly once; the audit catches a double apply.
func TestCASAtLeaderCrashEdge(t *testing.T) {
	eng, rep := newRep(10)
	swapped := false
	eng.At(2*time.Second, func() {
		rep.CompareAndSwap("edge", "", "claimed", func(ok bool, err error) {
			if err == nil && ok {
				swapped = true
			}
		})
		if err := rep.CrashReplica(rep.Leader(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	stopAt(eng, rep, 12*time.Second)
	eng.Run()
	if swapped && rep.Version("edge") != 1 {
		t.Fatalf("acked CAS applied %d times", rep.Version("edge"))
	}
	audit(t, rep)
}

// A watch canceled from inside its own callback mid-replay must not see the
// rest of the batch: commits land in batches after an election, and the
// cancel takes effect immediately.
func TestWatchCancelMidReplay(t *testing.T) {
	eng, rep := newRep(11)
	var got []string
	var cancel func()
	cancel = rep.Watch("c/", func(k, v string) {
		got = append(got, k)
		cancel()
	})
	eng.At(time.Second, func() {
		// Several writes in one tick commit as one batch and replay together.
		for i := 0; i < 5; i++ {
			rep.SetE(fmt.Sprintf("c/k%d", i), "v", nil)
		}
	})
	stopAt(eng, rep, 5*time.Second)
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("canceled watch saw %d deliveries: %v", len(got), got)
	}
	if rep.Watches() != 0 {
		t.Fatalf("%d watches still registered", rep.Watches())
	}
	audit(t, rep)
}

func TestReplicatedUnavailableWithoutQuorum(t *testing.T) {
	eng, rep := newRep(12)
	var sawErr, sawOK int
	eng.At(2*time.Second, func() {
		// Cut two of three replicas: no quorum, every op must fail (after
		// OpTimeout) rather than ack a write that could be lost.
		names := rep.ReplicaNames()
		if err := rep.CrashReplica(names[0], 0); err != nil {
			t.Fatal(err)
		}
		if err := rep.CrashReplica(names[1], 0); err != nil {
			t.Fatal(err)
		}
	})
	eng.At(4*time.Second, func() {
		rep.SetE("q", "1", func(err error) {
			if err != nil {
				sawErr++
			} else {
				sawOK++
			}
		})
	})
	stopAt(eng, rep, 10*time.Second)
	eng.Run()
	if sawOK != 0 || sawErr != 1 {
		t.Fatalf("quorumless write: ok=%d err=%d", sawOK, sawErr)
	}
	if _, ok := rep.GetNow("q"); ok {
		t.Fatal("quorumless write became visible")
	}
	audit(t, rep)
}

// Satellite regression: the single store's watch notifications must fire in
// submission order — which is Version() order — even when a latency spike
// expires between two submissions. Before the FIFO fix the slowed op landed
// after the fast one and the watch replayed history backwards.
func TestStoreWatchOrderMatchesVersion(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	var order []string
	s.Watch("k", func(k, v string) { order = append(order, v) })
	s.SlowBy(10, 500*time.Microsecond) // first op completes at 10ms
	s.Set("k", "first")                // submitted under the spike
	eng.At(2*time.Millisecond, func() {
		s.Set("k", "second") // spike expired: raw latency would land at 3ms
	})
	eng.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("notification order = %v, want [first second]", order)
	}
	if s.Version("k") != 2 {
		t.Fatalf("version = %d", s.Version("k"))
	}
	if v, _ := s.GetNow("k"); v != "second" {
		t.Fatalf("final value = %q, want the later submission", v)
	}
}
