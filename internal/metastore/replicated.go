// Replicated is the N-replica quorum store: the same key/value + watch API
// as Store, served by a Raft-style replicated log with lease-based
// leadership. Every message, timer, and election rides the sim engine, so a
// given (seed, fault schedule) pair reproduces bit-for-bit.
//
// Protocol sketch:
//   - Monotonic terms; at most one leader per term (majority vote, with the
//     usual up-to-date log restriction).
//   - Writes append to the leader's log, replicate via AppendEntries, and
//     commit on majority match — only entries of the leader's own term
//     commit directly (predecessors commit implicitly).
//   - Each new leader appends a no-op barrier entry and serves linearizable
//     reads only once that barrier is applied AND its lease is valid. The
//     lease extends to roundStart+LeaseSpan when a majority acks a
//     heartbeat round; voters hold votes for ElectionTimeout after hearing
//     a leader (and after restarting), and LeaseSpan < ElectionTimeout, so
//     a stale leader's lease always expires before a new leader can rise.
//   - GetSession is the weaker read-your-writes read: served by the
//     session's home replica once it has applied past the session's floor
//     (the commit index of the session's last acknowledged op).
//   - Crash keeps term/votedFor/log ("disk") but loses volatile state;
//     rejoining replicas catch up through AppendEntries consistency checks.
package metastore

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"aegaeon/internal/sim"
)

// RepConfig parameterizes a Replicated store.
type RepConfig struct {
	Replicas int           // quorum group size (default 3)
	RTT      time.Duration // client<->replica round trip (default 1ms)
	LinkRTT  time.Duration // replica<->replica round trip (default 500µs)

	Heartbeat       time.Duration // leader heartbeat interval (default 100ms)
	LeaseSpan       time.Duration // leader lease per acked round (default 240ms)
	ElectionTimeout time.Duration // min election timeout; jitter adds up to
	// the same again (default 400ms). Must exceed LeaseSpan or lease reads
	// are unsafe; defaults() enforces it.
	OpTimeout  time.Duration // client-side op deadline (default 1s)
	RetryDelay time.Duration // client re-probe interval (default 100ms)

	Seed          int64 // election jitter seed (default 1)
	RecordHistory bool  // record every client op for the linearizability audit
}

func (c *RepConfig) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.RTT <= 0 {
		c.RTT = time.Millisecond
	}
	if c.LinkRTT <= 0 {
		c.LinkRTT = 500 * time.Microsecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.LeaseSpan <= 0 {
		c.LeaseSpan = 240 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 400 * time.Millisecond
	}
	if c.ElectionTimeout <= c.LeaseSpan {
		c.ElectionTimeout = c.LeaseSpan + c.LeaseSpan/2
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = time.Second
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// client is the virtual node id of the proxy-side facade.
const client = -1

type repRole uint8

const (
	roleFollower repRole = iota
	roleCandidate
	roleLeader
)

func (r repRole) String() string {
	switch r {
	case roleLeader:
		return "leader"
	case roleCandidate:
		return "candidate"
	}
	return "follower"
}

// opc is the replicated operation class carried in log entries and client
// messages.
type opc uint8

const (
	opNop opc = iota
	opSet
	opDelete
	opCAS
	opGet        // linearizable read (leader, lease + barrier)
	opSessionGet // read-your-writes read (home replica, floor-gated)
)

// entry is one replicated log record.
type entry struct {
	term          uint64
	kind          opc
	key, val, old string
	opID          uint64 // client op id; 0 for the no-op barrier
}

// Commit is one quorum-committed log entry as applied to the key space —
// the audit's ground truth and the source for watch replay.
type Commit struct {
	Index   uint64
	Term    uint64
	OpID    uint64
	Kind    opc
	Key     string
	Value   string // value after application ("" for deletes)
	Applied bool   // the entry changed state (CAS losses and absent-key deletes don't)
	Deleted bool
	Version uint64 // key version after application (0 when !Applied)
	At      sim.Time
}

type opMsg struct {
	id            uint64
	kind          opc
	key, val, old string
	floor         uint64 // session reads: min applied index to serve at
}

type respMsg struct {
	id       uint64
	ok       bool
	retry    bool // not the leader / lease not ready: client should retry
	redirect int  // leader hint on retry (-1 unknown)
	val      string
	found    bool
	swapped  bool
	index    uint64 // leader applied index (session floor + watch resync)
	served   uint64 // session reads: home replica applied index at serve
}

type aeMsg struct {
	term     uint64
	leader   int
	prevIdx  uint64
	prevTerm uint64
	entries  []entry
	commit   uint64
	round    sim.Time // heartbeat round start, echoed for lease accounting
}

type aeResp struct {
	from    int
	term    uint64
	success bool
	match   uint64
	hint    uint64 // on failure: follower log length, to back off nextIndex
	round   sim.Time
}

type rvMsg struct {
	term     uint64
	cand     int
	lastIdx  uint64
	lastTerm uint64
}

type rvResp struct {
	from    int
	term    uint64
	granted bool
}

type pendingOp struct {
	id            uint64
	kind          opc
	key, val, old string
	sess          *Session
	home          int
	floor         uint64
	attempts      int
	sent          bool
	done          bool
	recIdx        int
	timeoutEv     *sim.Event
	retryEv       *sim.Event
	fin           func(m respMsg, err error)
}

// Session is a client session with read-your-writes consistency: GetSession
// reads are served by the session's home replica once it has applied past
// the session's floor (the index of the session's last acknowledged op).
type Session struct {
	r     *Replicated
	name  string
	home  int
	floor uint64
}

// replica is one member of the quorum group.
type replica struct {
	r    *Replicated
	id   int
	name string
	down bool

	// Durable state (survives crashes).
	term     uint64
	votedFor int
	log      []entry

	// Volatile state (lost on crash, rebuilt from the log).
	role      repRole
	leaderID  int
	lastHeard sim.Time
	holdUntil sim.Time // refuse votes until then (lease protection)
	timeout   sim.Time // current election timeout draw
	commit    uint64
	applied   uint64
	data      map[string]string
	version   map[string]uint64
	outcomes  map[uint64]Commit // opID -> applied outcome (exactly-once dedup)
	inLog     map[uint64]uint64 // opID -> log index, for retry dedup

	// Leader state.
	nextIndex  []uint64
	matchIndex []uint64
	leaseUntil sim.Time
	termStart  uint64 // index of this term's no-op barrier
	rounds     map[sim.Time]int
	pending    map[uint64][]uint64 // log index -> client op ids awaiting apply
	hbGen      int

	waiting    []opMsg // session reads waiting for applied >= floor
	electionEv *sim.Event
	crashes    int
}

// Replicated is the quorum store facade. It implements API.
type Replicated struct {
	eng  *sim.Engine
	cfg  RepConfig
	rng  *rand.Rand
	reps []*replica

	started bool
	stopped bool

	// Quorum-committed ground truth: the agreed apply sequence and the key
	// space it produces. recordGlobal appends each index exactly once (the
	// first replica to apply it) and flags any divergence.
	commits []Commit
	data    map[string]string
	version map[string]uint64

	// Client facade.
	watchesL   []*watch
	delivered  uint64 // commits replayed to watches, in order
	leaderHint int
	nextOp     uint64
	pend       map[uint64]*pendingOp
	sessions   map[string]*Session
	def        *Session

	gets, sets, deletes, failed uint64
	leaderChanges               int

	hist       *History
	divergence []string

	// Link faults. Node indices 0..n-1 are replicas; index n is the client.
	isolUntil  []sim.Time
	slowUntil  []sim.Time
	slowFactor []float64
	cuts       map[[2]int]sim.Time // directed replica->replica drops
}

// NewReplicated builds an N-replica quorum store named ms0..msN-1 and arms
// its election timers. The protocol's heartbeats keep the event queue
// non-empty until Stop is called — callers must pair NewReplicated with Stop
// (the cluster ties Stop to StopHealth) or sim.Engine.Run will never drain.
func NewReplicated(eng *sim.Engine, cfg RepConfig) *Replicated {
	cfg.defaults()
	n := cfg.Replicas
	r := &Replicated{
		eng:        eng,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		data:       map[string]string{},
		version:    map[string]uint64{},
		leaderHint: -1,
		pend:       map[uint64]*pendingOp{},
		sessions:   map[string]*Session{},
		hist:       &History{on: cfg.RecordHistory},
		isolUntil:  make([]sim.Time, n+1),
		slowUntil:  make([]sim.Time, n+1),
		slowFactor: make([]float64, n+1),
		cuts:       map[[2]int]sim.Time{},
	}
	for i := 0; i < n; i++ {
		rp := &replica{
			r:        r,
			id:       i,
			name:     fmt.Sprintf("ms%d", i),
			votedFor: -1,
			leaderID: -1,
			data:     map[string]string{},
			version:  map[string]uint64{},
			outcomes: map[uint64]Commit{},
			inLog:    map[uint64]uint64{},
			pending:  map[uint64][]uint64{},
		}
		r.reps = append(r.reps, rp)
	}
	r.def = r.Session("proxy")
	for _, rp := range r.reps {
		rp.armElection()
	}
	r.started = true
	return r
}

// Stop halts the protocol: timers die, in-flight client ops are abandoned
// (their callbacks never fire), and any committed-but-undelivered watch
// notifications flush so mirrors converge before the event queue drains.
func (r *Replicated) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	for _, rp := range r.reps {
		if rp.electionEv != nil {
			rp.electionEv.Cancel()
			rp.electionEv = nil
		}
		rp.hbGen++
	}
	for _, po := range r.pend {
		if po.timeoutEv != nil {
			po.timeoutEv.Cancel()
		}
		if po.retryEv != nil {
			po.retryEv.Cancel()
		}
	}
	r.pend = map[uint64]*pendingOp{}
	r.deliverWatches(uint64(len(r.commits)))
}

func (r *Replicated) quorum() int { return len(r.reps)/2 + 1 }

func (r *Replicated) drawTimeout() sim.Time {
	et := int64(r.cfg.ElectionTimeout)
	return sim.Time(et + r.rng.Int63n(et))
}

func (r *Replicated) byName(name string) *replica {
	for _, rp := range r.reps {
		if rp.name == name {
			return rp
		}
	}
	return nil
}

// ReplicaNames returns the replica names, for fault-schedule generation.
func (r *Replicated) ReplicaNames() []string {
	out := make([]string, len(r.reps))
	for i, rp := range r.reps {
		out[i] = rp.name
	}
	return out
}

// ---- virtual network ----

func (r *Replicated) ni(x int) int {
	if x == client {
		return len(r.reps)
	}
	return x
}

func (r *Replicated) up(from, to int) bool {
	now := r.eng.Now()
	if now < r.isolUntil[r.ni(from)] || now < r.isolUntil[r.ni(to)] {
		return false
	}
	if from != client && to != client {
		if until, ok := r.cuts[[2]int{from, to}]; ok && now < until {
			return false
		}
	}
	return true
}

func (r *Replicated) linkDelay(from, to int) time.Duration {
	base := r.cfg.LinkRTT / 2
	if from == client || to == client {
		base = r.cfg.RTT / 2
	}
	now := r.eng.Now()
	f := 1.0
	for _, x := range []int{r.ni(from), r.ni(to)} {
		if now < r.slowUntil[x] && r.slowFactor[x] > f {
			f = r.slowFactor[x]
		}
	}
	if f > 1 {
		return time.Duration(float64(base) * f)
	}
	return base
}

// send delivers f after the one-way link delay; reachability is sampled at
// send time. Returns whether the message left at all. Per-link delay can
// vary across a netdelay window, so messages MAY reorder — the protocol's
// term and index checks are what make that safe (unlike the single store,
// which needs FIFO completions).
func (r *Replicated) send(from, to int, f func()) bool {
	if r.stopped || !r.up(from, to) {
		return false
	}
	r.eng.After(r.linkDelay(from, to), func() {
		if !r.stopped {
			f()
		}
	})
	return true
}

// ---- fault surface ----

// Partition blacks out the client's links for d: the legacy single-store
// fault. Replica-to-replica links stay up, so the quorum keeps running and
// only client ops fail.
func (r *Replicated) Partition(d time.Duration) {
	r.isolate(client, d)
}

// SlowBy multiplies client-link latency by factor for d (legacy fault).
func (r *Replicated) SlowBy(factor float64, d time.Duration) {
	r.slowNode(client, factor, d)
}

func (r *Replicated) isolate(node int, d time.Duration) {
	if d <= 0 {
		return
	}
	if until := r.eng.Now() + d; until > r.isolUntil[r.ni(node)] {
		r.isolUntil[r.ni(node)] = until
	}
}

func (r *Replicated) slowNode(node int, factor float64, d time.Duration) {
	if factor <= 1 || d <= 0 {
		return
	}
	i := r.ni(node)
	if until := r.eng.Now() + d; until > r.slowUntil[i] {
		r.slowUntil[i] = until
	}
	r.slowFactor[i] = factor
}

// PartitionReplica isolates one replica from peers and clients for d.
func (r *Replicated) PartitionReplica(target string, d sim.Time) error {
	rp := r.byName(target)
	if rp == nil {
		return fmt.Errorf("metastore: no replica %q", target)
	}
	r.isolate(rp.id, d)
	return nil
}

// Netsplit drops messages from replicas in from to replicas in to (one
// direction) for d.
func (r *Replicated) Netsplit(from, to []string, d sim.Time) error {
	if d <= 0 {
		return nil
	}
	until := r.eng.Now() + d
	for _, a := range from {
		ra := r.byName(a)
		if ra == nil {
			return fmt.Errorf("metastore: no replica %q", a)
		}
		for _, b := range to {
			rb := r.byName(b)
			if rb == nil {
				return fmt.Errorf("metastore: no replica %q", b)
			}
			k := [2]int{ra.id, rb.id}
			if until > r.cuts[k] {
				r.cuts[k] = until
			}
		}
	}
	return nil
}

// SlowLinks multiplies latency on every link touching target ("" or "*" =
// all nodes) by factor for d.
func (r *Replicated) SlowLinks(target string, factor float64, d sim.Time) error {
	if target == "" || target == "*" {
		for _, rp := range r.reps {
			r.slowNode(rp.id, factor, d)
		}
		r.slowNode(client, factor, d)
		return nil
	}
	rp := r.byName(target)
	if rp == nil {
		return fmt.Errorf("metastore: no replica %q", target)
	}
	r.slowNode(rp.id, factor, d)
	return nil
}

// CrashReplica fail-stops target. Durable state (term, vote, log) survives;
// volatile state is rebuilt from the log after restartAfter (0 = never).
func (r *Replicated) CrashReplica(target string, restartAfter sim.Time) error {
	rp := r.byName(target)
	if rp == nil {
		return fmt.Errorf("metastore: no replica %q", target)
	}
	if rp.down {
		return fmt.Errorf("metastore: replica %s already down", target)
	}
	rp.down = true
	rp.crashes++
	if rp.electionEv != nil {
		rp.electionEv.Cancel()
		rp.electionEv = nil
	}
	rp.hbGen++
	rp.role = roleFollower
	rp.leaderID = -1
	rp.leaseUntil = 0
	rp.commit, rp.applied = 0, 0
	rp.data = map[string]string{}
	rp.version = map[string]uint64{}
	rp.outcomes = map[uint64]Commit{}
	rp.pending = map[uint64][]uint64{}
	rp.rounds = nil
	rp.waiting = nil
	if restartAfter > 0 {
		r.eng.After(restartAfter, func() { r.restartReplica(rp) })
	}
	return nil
}

func (r *Replicated) restartReplica(rp *replica) {
	if r.stopped || !rp.down {
		return
	}
	rp.down = false
	// Hold votes for a full election timeout: this replica may have acked a
	// lease round just before crashing, and granting instantly could elect
	// a new leader while that lease is still valid.
	rp.holdUntil = r.eng.Now() + r.cfg.ElectionTimeout
	rp.armElection()
}

// ---- elections & leadership ----

func (rp *replica) armElection() {
	r := rp.r
	rp.timeout = r.drawTimeout()
	rp.lastHeard = r.eng.Now()
	rp.electionEv = r.eng.After(rp.timeout, rp.electionTick)
}

func (rp *replica) electionTick() {
	r := rp.r
	if r.stopped || rp.down || rp.role == roleLeader {
		return
	}
	now := r.eng.Now()
	if dl := rp.lastHeard + rp.timeout; now < dl {
		rp.electionEv = r.eng.At(dl, rp.electionTick)
		return
	}
	rp.startElection()
	rp.timeout = r.drawTimeout()
	rp.lastHeard = now
	rp.electionEv = r.eng.After(rp.timeout, rp.electionTick)
}

func (rp *replica) lastLog() (idx, term uint64) {
	idx = uint64(len(rp.log))
	if idx > 0 {
		term = rp.log[idx-1].term
	}
	return
}

func (rp *replica) startElection() {
	r := rp.r
	rp.role = roleCandidate
	rp.term++
	rp.votedFor = rp.id
	rp.leaderID = -1
	if len(r.reps) == 1 {
		rp.becomeLeader()
		return
	}
	lastIdx, lastTerm := rp.lastLog()
	m := rvMsg{term: rp.term, cand: rp.id, lastIdx: lastIdx, lastTerm: lastTerm}
	rp.votesFor(m)
}

func (rp *replica) votesFor(m rvMsg) {
	r := rp.r
	votes := map[int]bool{rp.id: true}
	for _, peer := range r.reps {
		if peer.id == rp.id {
			continue
		}
		p := peer
		r.send(rp.id, p.id, func() {
			p.onRequestVote(m, func(resp rvResp) {
				r.send(p.id, rp.id, func() { rp.onVoteResp(m.term, resp, votes) })
			})
		})
	}
}

func (rp *replica) onRequestVote(m rvMsg, reply func(rvResp)) {
	r := rp.r
	if rp.down {
		return
	}
	now := r.eng.Now()
	if m.term < rp.term {
		reply(rvResp{from: rp.id, term: rp.term, granted: false})
		return
	}
	if now < rp.holdUntil {
		// Within the vote-hold window after hearing a leader (or after a
		// restart): refuse without adopting the candidate's term, so an
		// active lease can never be undercut by a premature election.
		reply(rvResp{from: rp.id, term: rp.term, granted: false})
		return
	}
	rp.observeTerm(m.term)
	myIdx, myTerm := rp.lastLog()
	upToDate := m.lastTerm > myTerm || (m.lastTerm == myTerm && m.lastIdx >= myIdx)
	granted := false
	if (rp.votedFor == -1 || rp.votedFor == m.cand) && upToDate {
		rp.votedFor = m.cand
		rp.lastHeard = now
		granted = true
	}
	reply(rvResp{from: rp.id, term: rp.term, granted: granted})
}

func (rp *replica) onVoteResp(electionTerm uint64, m rvResp, votes map[int]bool) {
	r := rp.r
	if rp.down {
		return
	}
	if m.term > rp.term {
		rp.observeTerm(m.term)
		return
	}
	if rp.role != roleCandidate || rp.term != electionTerm || !m.granted {
		return
	}
	votes[m.from] = true
	if len(votes) >= r.quorum() {
		rp.becomeLeader()
	}
}

func (rp *replica) becomeLeader() {
	r := rp.r
	rp.role = roleLeader
	rp.leaderID = rp.id
	r.leaderChanges++
	r.hist.election(rp.term, rp.name, r.eng.Now())
	n := len(r.reps)
	rp.nextIndex = make([]uint64, n)
	rp.matchIndex = make([]uint64, n)
	for i := range rp.nextIndex {
		rp.nextIndex[i] = uint64(len(rp.log)) + 1
	}
	rp.rounds = map[sim.Time]int{}
	rp.leaseUntil = 0
	// No-op barrier: commits every surviving predecessor entry and gates
	// this term's linearizable reads on a fully caught-up state machine.
	rp.log = append(rp.log, entry{term: rp.term, kind: opNop})
	rp.termStart = uint64(len(rp.log))
	rp.hbGen++
	gen := rp.hbGen
	var tick func()
	tick = func() {
		if r.stopped || rp.down || rp.role != roleLeader || rp.hbGen != gen {
			return
		}
		rp.broadcastAppend()
		r.eng.After(r.cfg.Heartbeat, tick)
	}
	tick()
	if n == 1 {
		rp.advanceCommit()
	}
}

func (rp *replica) observeTerm(t uint64) {
	if t <= rp.term {
		return
	}
	rp.term = t
	rp.votedFor = -1
	rp.stepDown()
}

func (rp *replica) stepDown() {
	wasLeader := rp.role == roleLeader
	rp.role = roleFollower
	rp.leaderID = -1
	rp.hbGen++
	rp.leaseUntil = 0
	// Abandoned proposals: their clients retry or time out; the exactly-once
	// dedup (inLog/outcomes) makes the retries safe.
	rp.pending = map[uint64][]uint64{}
	if wasLeader {
		rp.armElection()
	}
}

func (rp *replica) canServeReads() bool {
	r := rp.r
	if rp.applied < rp.termStart {
		return false
	}
	if len(r.reps) == 1 {
		return true
	}
	return r.eng.Now() < rp.leaseUntil
}

// ---- replication ----

func (rp *replica) broadcastAppend() {
	r := rp.r
	now := r.eng.Now()
	if _, ok := rp.rounds[now]; !ok {
		rp.rounds[now] = 0
	}
	for k := range rp.rounds {
		if k < now-4*sim.Time(r.cfg.LeaseSpan) {
			delete(rp.rounds, k)
		}
	}
	for _, peer := range r.reps {
		if peer.id != rp.id {
			rp.sendAppend(peer.id, now)
		}
	}
}

func (rp *replica) sendAppend(peer int, round sim.Time) {
	r := rp.r
	ni := rp.nextIndex[peer]
	if ni < 1 {
		ni = 1
	}
	prevIdx := ni - 1
	var prevTerm uint64
	if prevIdx > 0 {
		prevTerm = rp.log[prevIdx-1].term
	}
	end := uint64(len(rp.log))
	if end > prevIdx+64 {
		end = prevIdx + 64
	}
	entries := append([]entry(nil), rp.log[prevIdx:end]...)
	m := aeMsg{term: rp.term, leader: rp.id, prevIdx: prevIdx, prevTerm: prevTerm,
		entries: entries, commit: rp.commit, round: round}
	p := r.reps[peer]
	r.send(rp.id, peer, func() {
		p.onAppend(m, func(resp aeResp) {
			r.send(p.id, rp.id, func() { rp.onAppendResp(resp) })
		})
	})
}

func (rp *replica) onAppend(m aeMsg, reply func(aeResp)) {
	r := rp.r
	if rp.down {
		return
	}
	if m.term < rp.term {
		reply(aeResp{from: rp.id, term: rp.term, success: false, round: m.round})
		return
	}
	rp.observeTerm(m.term)
	if rp.role == roleCandidate {
		rp.role = roleFollower
	}
	rp.leaderID = m.leader
	rp.lastHeard = r.eng.Now()
	rp.holdUntil = r.eng.Now() + r.cfg.ElectionTimeout
	if m.prevIdx > uint64(len(rp.log)) ||
		(m.prevIdx > 0 && rp.log[m.prevIdx-1].term != m.prevTerm) {
		hint := uint64(len(rp.log))
		if hint > m.prevIdx {
			hint = m.prevIdx
		}
		reply(aeResp{from: rp.id, term: rp.term, success: false, hint: hint, round: m.round})
		return
	}
	for i, e := range m.entries {
		idx := m.prevIdx + uint64(i) + 1
		if idx <= uint64(len(rp.log)) {
			if rp.log[idx-1].term == e.term {
				continue
			}
			if idx <= rp.applied {
				r.divergence = append(r.divergence, fmt.Sprintf(
					"control-plane: %s asked to truncate applied entry %d (term %d -> %d)",
					rp.name, idx, rp.log[idx-1].term, e.term))
				reply(aeResp{from: rp.id, term: rp.term, success: false, hint: idx - 1, round: m.round})
				return
			}
			rp.truncateLog(idx - 1)
		}
		rp.log = append(rp.log, e)
		if e.opID != 0 {
			rp.inLog[e.opID] = idx
		}
	}
	match := m.prevIdx + uint64(len(m.entries))
	if c := m.commit; c > rp.commit {
		if c > match {
			c = match
		}
		rp.applyTo(c)
	}
	reply(aeResp{from: rp.id, term: rp.term, success: true, match: match, round: m.round})
}

func (rp *replica) truncateLog(n uint64) {
	for i := n; i < uint64(len(rp.log)); i++ {
		if id := rp.log[i].opID; id != 0 {
			delete(rp.inLog, id)
		}
	}
	rp.log = rp.log[:n]
}

func (rp *replica) onAppendResp(m aeResp) {
	r := rp.r
	if rp.down {
		return
	}
	if m.term > rp.term {
		rp.observeTerm(m.term)
		return
	}
	if rp.role != roleLeader || m.term < rp.term {
		return
	}
	if !m.success {
		ni := rp.nextIndex[m.from]
		if ni > 1 {
			ni--
		}
		if m.hint+1 < ni {
			ni = m.hint + 1
		}
		if ni < 1 {
			ni = 1
		}
		rp.nextIndex[m.from] = ni
		rp.sendAppend(m.from, r.eng.Now())
		return
	}
	if m.match > rp.matchIndex[m.from] {
		rp.matchIndex[m.from] = m.match
	}
	if next := rp.matchIndex[m.from] + 1; next > rp.nextIndex[m.from] {
		rp.nextIndex[m.from] = next
	}
	if n, ok := rp.rounds[m.round]; ok {
		n++
		if n+1 >= r.quorum() {
			if until := m.round + sim.Time(r.cfg.LeaseSpan); until > rp.leaseUntil {
				rp.leaseUntil = until
			}
			delete(rp.rounds, m.round)
		} else {
			rp.rounds[m.round] = n
		}
	}
	rp.advanceCommit()
	if rp.nextIndex[m.from] <= uint64(len(rp.log)) {
		rp.sendAppend(m.from, r.eng.Now())
	}
}

func (rp *replica) advanceCommit() {
	r := rp.r
	for idx := uint64(len(rp.log)); idx > rp.commit; idx-- {
		if rp.log[idx-1].term != rp.term {
			break // only own-term entries commit by counting (§5.4.2)
		}
		cnt := 1
		for _, peer := range r.reps {
			if peer.id != rp.id && rp.matchIndex[peer.id] >= idx {
				cnt++
			}
		}
		if cnt >= r.quorum() {
			rp.applyTo(idx)
			break
		}
	}
}

// applyTo advances the applied cursor to commit, mutating the replica's
// state machine, recording the global commit sequence, answering pending
// clients (leader), and waking floor-gated session reads.
func (rp *replica) applyTo(commit uint64) {
	r := rp.r
	if commit > uint64(len(rp.log)) {
		commit = uint64(len(rp.log))
	}
	if commit > rp.commit {
		rp.commit = commit
	}
	appliedAny := false
	for rp.applied < rp.commit {
		idx := rp.applied + 1
		e := rp.log[idx-1]
		c := rp.applyEntry(idx, e)
		rp.applied = idx
		appliedAny = true
		if e.opID != 0 {
			rp.outcomes[e.opID] = c
		}
		r.recordGlobal(idx, e, c)
		if rp.role == roleLeader {
			if ids := rp.pending[idx]; len(ids) > 0 {
				delete(rp.pending, idx)
				for _, id := range ids {
					rp.replyOutcome(id, c)
				}
			}
		}
	}
	if appliedAny {
		rp.drainWaiting()
		if rp.role == roleLeader {
			upTo := rp.applied
			r.send(rp.id, client, func() { r.deliverWatches(upTo) })
		}
	}
}

func (rp *replica) applyEntry(idx uint64, e entry) Commit {
	c := Commit{Index: idx, Term: e.term, OpID: e.opID, Kind: e.kind, Key: e.key, At: rp.r.eng.Now()}
	switch e.kind {
	case opSet:
		rp.data[e.key] = e.val
		rp.version[e.key]++
		c.Value, c.Applied, c.Version = e.val, true, rp.version[e.key]
	case opDelete:
		if _, ok := rp.data[e.key]; ok {
			delete(rp.data, e.key)
			rp.version[e.key]++
			c.Applied, c.Deleted, c.Version = true, true, rp.version[e.key]
		}
	case opCAS:
		if rp.data[e.key] == e.old {
			rp.data[e.key] = e.val
			rp.version[e.key]++
			c.Value, c.Applied, c.Version = e.val, true, rp.version[e.key]
		}
	}
	return c
}

func (rp *replica) replyOutcome(id uint64, c Commit) {
	r := rp.r
	m := respMsg{id: id, ok: true, swapped: c.Applied && c.Kind == opCAS,
		val: c.Value, found: c.Applied, index: rp.applied}
	r.send(rp.id, client, func() { r.onResp(m) })
}

func (rp *replica) drainWaiting() {
	if len(rp.waiting) == 0 {
		return
	}
	var still []opMsg
	for _, m := range rp.waiting {
		if rp.applied >= m.floor {
			rp.serveLocal(m)
		} else {
			still = append(still, m)
		}
	}
	rp.waiting = still
}

func (rp *replica) serveLocal(m opMsg) {
	r := rp.r
	v, ok := rp.data[m.key]
	resp := respMsg{id: m.id, ok: true, val: v, found: ok, served: rp.applied, index: rp.applied}
	r.send(rp.id, client, func() { r.onResp(resp) })
}

// recordGlobal appends index idx to the agreed commit sequence exactly once
// and cross-checks every later replay of it — any mismatch is a quorum
// divergence the audit must surface.
func (r *Replicated) recordGlobal(idx uint64, e entry, c Commit) {
	if idx <= uint64(len(r.commits)) {
		prev := r.commits[idx-1]
		if prev.Term != e.term || prev.OpID != e.opID {
			r.divergence = append(r.divergence, fmt.Sprintf(
				"control-plane: commit divergence at index %d: (term %d, op %d) vs (term %d, op %d)",
				idx, prev.Term, prev.OpID, e.term, e.opID))
		}
		return
	}
	if idx != uint64(len(r.commits))+1 {
		r.divergence = append(r.divergence, fmt.Sprintf(
			"control-plane: apply gap: index %d committed with only %d recorded", idx, len(r.commits)))
		return
	}
	r.commits = append(r.commits, c)
	if c.Applied {
		if c.Deleted {
			delete(r.data, c.Key)
		} else {
			r.data[c.Key] = c.Value
		}
		r.version[c.Key] = c.Version
	}
}

// ---- client operations ----

func (rp *replica) onClientOp(m opMsg) {
	r := rp.r
	if rp.down {
		return
	}
	if m.kind == opSessionGet {
		if rp.applied >= m.floor {
			rp.serveLocal(m)
		} else {
			rp.waiting = append(rp.waiting, m)
		}
		return
	}
	if rp.role != roleLeader {
		resp := respMsg{id: m.id, retry: true, redirect: rp.leaderID}
		r.send(rp.id, client, func() { r.onResp(resp) })
		return
	}
	if m.kind == opGet {
		if !rp.canServeReads() {
			resp := respMsg{id: m.id, retry: true, redirect: rp.id}
			r.send(rp.id, client, func() { r.onResp(resp) })
			return
		}
		v, ok := rp.data[m.key]
		resp := respMsg{id: m.id, ok: true, val: v, found: ok, index: rp.applied}
		r.send(rp.id, client, func() { r.onResp(resp) })
		return
	}
	// Mutation. Exactly-once: a retry of an op we already applied answers
	// from the recorded outcome; one already in the log (possibly inherited
	// from a deposed leader) just re-attaches the responder.
	if c, ok := rp.outcomes[m.id]; ok {
		rp.replyOutcome(m.id, c)
		return
	}
	if idx, ok := rp.inLog[m.id]; ok {
		rp.pending[idx] = append(rp.pending[idx], m.id)
		return
	}
	rp.log = append(rp.log, entry{term: rp.term, kind: m.kind, key: m.key, val: m.val, old: m.old, opID: m.id})
	idx := uint64(len(rp.log))
	rp.inLog[m.id] = idx
	rp.pending[idx] = append(rp.pending[idx], m.id)
	now := r.eng.Now()
	if _, ok := rp.rounds[now]; !ok {
		rp.rounds[now] = 0
	}
	for _, peer := range r.reps {
		if peer.id != rp.id {
			rp.sendAppend(peer.id, now)
		}
	}
	if len(r.reps) == 1 {
		rp.advanceCommit()
	}
}

func (r *Replicated) submit(kind opc, key, val, old string, sess *Session, fin func(m respMsg, err error)) {
	r.nextOp++
	po := &pendingOp{id: r.nextOp, kind: kind, key: key, val: val, old: old, sess: sess, fin: fin, recIdx: -1}
	if kind == opSessionGet {
		po.home = sess.home
		po.floor = sess.floor
	}
	if r.stopped {
		r.failed++
		fin(respMsg{}, ErrUnavailable)
		return
	}
	r.pend[po.id] = po
	po.recIdx = r.hist.invoke(po.id, sess.name, kind, key, val, old, po.floor, r.eng.Now())
	po.timeoutEv = r.eng.After(r.cfg.OpTimeout, func() { r.failOp(po) })
	r.attempt(po, -1)
}

// attempt sends (or resends) a pending op. prefer < 0 picks the target: the
// leader hint on the first try, then round-robin — a hint pointing at a
// crashed or cut-off replica answers nothing, so retries must probe past it
// or the client wedges until its deadline. Session reads start at the
// session's home replica and walk outward the same way: the floor gate, not
// the home identity, is what carries read-your-writes.
func (r *Replicated) attempt(po *pendingOp, prefer int) {
	if po.done || r.stopped {
		return
	}
	target := prefer
	if po.kind == opSessionGet {
		target = (po.home + po.attempts) % len(r.reps)
	} else if target < 0 || target >= len(r.reps) {
		if po.attempts == 0 && r.leaderHint >= 0 && r.leaderHint < len(r.reps) {
			target = r.leaderHint
		} else {
			target = po.attempts % len(r.reps)
		}
	}
	po.attempts++
	m := opMsg{id: po.id, kind: po.kind, key: po.key, val: po.val, old: po.old, floor: po.floor}
	rp := r.reps[target]
	if r.send(client, target, func() { rp.onClientOp(m) }) {
		po.sent = true
	}
	if po.retryEv != nil {
		po.retryEv.Cancel()
	}
	po.retryEv = r.eng.After(r.cfg.RetryDelay, func() { r.attempt(po, -1) })
}

func (r *Replicated) failOp(po *pendingOp) {
	if po.done {
		return
	}
	po.done = true
	if po.retryEv != nil {
		po.retryEv.Cancel()
	}
	delete(r.pend, po.id)
	r.failed++
	r.hist.respond(po.recIdx, respMsg{}, false, po.sent, r.eng.Now())
	po.fin(respMsg{}, ErrUnavailable)
}

func (r *Replicated) onResp(m respMsg) {
	po := r.pend[m.id]
	if po == nil || po.done {
		return
	}
	if m.retry {
		if m.redirect >= 0 && m.redirect < len(r.reps) {
			r.leaderHint = m.redirect
			if po.attempts < 64 {
				r.attempt(po, m.redirect)
			}
		}
		return
	}
	po.done = true
	if po.timeoutEv != nil {
		po.timeoutEv.Cancel()
	}
	if po.retryEv != nil {
		po.retryEv.Cancel()
	}
	delete(r.pend, po.id)
	if po.sess != nil {
		floor := m.index
		if po.kind == opSessionGet {
			floor = m.served
		}
		if floor > po.sess.floor {
			po.sess.floor = floor
		}
	}
	r.hist.respond(po.recIdx, m, true, po.sent, r.eng.Now())
	r.deliverWatches(m.index)
	po.fin(m, nil)
}

// deliverWatches replays committed state changes to the facade's watches in
// commit order, up to the highest index the client has heard of. Watches on
// the quorum store therefore never see the stale interleavings the single
// store's satellite fix addresses: replay order IS version order.
func (r *Replicated) deliverWatches(upTo uint64) {
	if upTo > uint64(len(r.commits)) {
		upTo = uint64(len(r.commits))
	}
	for r.delivered < upTo {
		c := r.commits[r.delivered]
		r.delivered++
		if !c.Applied {
			continue
		}
		r.hist.watched(c.Index, r.eng.Now())
		val := c.Value
		if c.Deleted {
			val = ""
		}
		for _, w := range r.watchesL {
			if !w.closed && strings.HasPrefix(c.Key, w.prefix) {
				w.fn(c.Key, val)
			}
		}
	}
}

// ---- sessions & API ----

// Session returns the named read-your-writes session, creating it on first
// use. The session's home replica (a stable hash of the name) serves its
// GetSession reads once caught up to the session's floor.
func (r *Replicated) Session(name string) *Session {
	if s := r.sessions[name]; s != nil {
		return s
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	s := &Session{r: r, name: name, home: int(h.Sum32()) % len(r.reps)}
	if s.home < 0 {
		s.home += len(r.reps)
	}
	r.sessions[name] = s
	return s
}

// SetE writes key=value through the leader's replicated log.
func (s *Session) SetE(key, value string, done func(err error)) {
	s.r.sets++
	s.r.submit(opSet, key, value, "", s, func(_ respMsg, err error) {
		if done != nil {
			done(err)
		}
	})
}

// GetE is a linearizable read through the leader's lease.
func (s *Session) GetE(key string, fn func(value string, ok bool, err error)) {
	s.r.gets++
	s.r.submit(opGet, key, "", "", s, func(m respMsg, err error) {
		if fn != nil {
			fn(m.val, m.found, err)
		}
	})
}

// GetSession is the session-consistent read served by the home replica.
func (s *Session) GetSession(key string, fn func(value string, ok bool, err error)) {
	s.r.gets++
	s.r.submit(opSessionGet, key, "", "", s, func(m respMsg, err error) {
		if fn != nil {
			fn(m.val, m.found, err)
		}
	})
}

// CompareAndSwap has Store.CompareAndSwap semantics, decided at apply time
// in the replicated log (absent keys compare as "").
func (s *Session) CompareAndSwap(key, old, new string, done func(swapped bool, err error)) {
	s.r.sets++
	s.r.submit(opCAS, key, new, old, s, func(m respMsg, err error) {
		if done != nil {
			done(m.swapped, err)
		}
	})
}

// DeleteE removes key through the replicated log.
func (s *Session) DeleteE(key string, done func(err error)) {
	s.r.deletes++
	s.r.submit(opDelete, key, "", "", s, func(_ respMsg, err error) {
		if done != nil {
			done(err)
		}
	})
}

// The API methods below ride the default "proxy" session.

func (r *Replicated) Set(key, value string, done ...func()) {
	r.def.SetE(key, value, func(error) {
		for _, d := range done {
			d()
		}
	})
}

func (r *Replicated) SetE(key, value string, done func(err error)) {
	r.def.SetE(key, value, done)
}

func (r *Replicated) Get(key string, fn func(value string, ok bool)) {
	r.def.GetE(key, func(v string, ok bool, err error) {
		if err != nil {
			fn("", false)
			return
		}
		fn(v, ok)
	})
}

func (r *Replicated) GetE(key string, fn func(value string, ok bool, err error)) {
	r.def.GetE(key, fn)
}

func (r *Replicated) GetSession(key string, fn func(value string, ok bool, err error)) {
	r.def.GetSession(key, fn)
}

func (r *Replicated) CompareAndSwap(key, old, new string, done func(swapped bool, err error)) {
	r.def.CompareAndSwap(key, old, new, done)
}

func (r *Replicated) Delete(key string, done ...func()) {
	r.def.DeleteE(key, func(error) {
		for _, d := range done {
			d()
		}
	})
}

// Watch has Store.Watch semantics against the committed sequence: replay is
// in commit (= version) order, and a cancel from inside a callback takes
// effect for the very next delivery.
func (r *Replicated) Watch(prefix string, fn func(key, value string)) (cancel func()) {
	w := &watch{prefix: prefix, fn: fn}
	r.watchesL = append(r.watchesL, w)
	return func() {
		if w.closed {
			return
		}
		w.closed = true
		kept := make([]*watch, 0, len(r.watchesL)-1)
		for _, x := range r.watchesL {
			if !x.closed {
				kept = append(kept, x)
			}
		}
		r.watchesL = kept
	}
}

// Watches returns the number of registered (non-cancelled) watches.
func (r *Replicated) Watches() int { return len(r.watchesL) }

// GetNow reads the quorum-committed state synchronously (diagnostics).
func (r *Replicated) GetNow(key string) (string, bool) {
	v, ok := r.data[key]
	return v, ok
}

// Keys returns the sorted committed keys under prefix (diagnostics).
func (r *Replicated) Keys(prefix string) []string {
	var out []string
	for k := range r.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Version returns the committed write counter for a key (0 if never set).
func (r *Replicated) Version(key string) uint64 { return r.version[key] }

// Ops returns cumulative (gets, sets, deletes) counted at submission.
func (r *Replicated) Ops() (gets, sets, deletes uint64) { return r.gets, r.sets, r.deletes }

// FailedOps returns how many client ops exhausted their deadline.
func (r *Replicated) FailedOps() uint64 { return r.failed }

// Available reports whether the client's store links are up right now.
func (r *Replicated) Available() bool {
	return r.eng.Now() >= r.isolUntil[r.ni(client)]
}

// Leader returns the name of the highest-term live leader ("" if none).
func (r *Replicated) Leader() string {
	name, best := "", uint64(0)
	for _, rp := range r.reps {
		if rp.role == roleLeader && !rp.down && rp.term >= best {
			name, best = rp.name, rp.term
		}
	}
	return name
}

// LeaderChanges returns how many elections have been won.
func (r *Replicated) LeaderChanges() int { return r.leaderChanges }

// Term returns the highest term any replica has entered.
func (r *Replicated) Term() uint64 {
	var t uint64
	for _, rp := range r.reps {
		if rp.term > t {
			t = rp.term
		}
	}
	return t
}

// Commits returns the agreed commit sequence (the audit's ground truth).
func (r *Replicated) Commits() []Commit { return r.commits }

// History returns the recorded client-op history (empty unless
// RecordHistory was set).
func (r *Replicated) History() *History { return r.hist }

// ReplicaView is one replica's protocol state for diagnostics.
type ReplicaView struct {
	Name    string `json:"name"`
	Role    string `json:"role"`
	Term    uint64 `json:"term"`
	Commit  uint64 `json:"commit_index"`
	Applied uint64 `json:"applied_index"`
	LogLen  int    `json:"log_len"`
	Up      bool   `json:"up"`
	Crashes int    `json:"crashes"`
}

// ControlView is the /debug/metastore snapshot.
type ControlView struct {
	SchemaVersion int           `json:"schema_version"`
	Mode          string        `json:"mode"` // "single" | "replicated"
	Replicas      []ReplicaView `json:"replicas,omitempty"`
	Term          uint64        `json:"term"`
	Leader        string        `json:"leader,omitempty"`
	LeaderChanges int           `json:"leader_changes"`
	CommitIndex   uint64        `json:"commit_index"`
	Gets          uint64        `json:"gets"`
	Sets          uint64        `json:"sets"`
	Deletes       uint64        `json:"deletes"`
	FailedOps     uint64        `json:"failed_ops"`
	Watches       int           `json:"watches"`
	Available     bool          `json:"available"`
}

// View snapshots the quorum group for the debug endpoint and metrics.
func (r *Replicated) View() ControlView {
	v := ControlView{
		SchemaVersion: 1,
		Mode:          "replicated",
		Term:          r.Term(),
		Leader:        r.Leader(),
		LeaderChanges: r.leaderChanges,
		CommitIndex:   uint64(len(r.commits)),
		Gets:          r.gets,
		Sets:          r.sets,
		Deletes:       r.deletes,
		FailedOps:     r.failed,
		Watches:       len(r.watchesL),
		Available:     r.Available(),
	}
	for _, rp := range r.reps {
		v.Replicas = append(v.Replicas, ReplicaView{
			Name: rp.name, Role: rp.role.String(), Term: rp.term,
			Commit: rp.commit, Applied: rp.applied, LogLen: len(rp.log),
			Up: !rp.down, Crashes: rp.crashes,
		})
	}
	return v
}
