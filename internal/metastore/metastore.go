// Package metastore is the shared-memory metadata service of Fig. 5 (Redis
// in the paper's deployment): a small key/value store with prefix watches
// and simulated access latency, used by the proxy layer to synchronize
// request metadata with serving instances for load balancing and fault
// tolerance.
package metastore

import (
	"sort"
	"strings"
	"time"

	"aegaeon/internal/sim"
)

// Store is an in-memory key/value store bound to the simulation clock.
type Store struct {
	eng     *sim.Engine
	rtt     time.Duration
	data    map[string]string
	version map[string]uint64
	watches []*watch

	gets, sets, deletes uint64
}

type watch struct {
	prefix string
	fn     func(key, value string)
	closed bool
}

// New creates a store with the given simulated round-trip latency per
// operation (0 for synchronous semantics).
func New(eng *sim.Engine, rtt time.Duration) *Store {
	return &Store{
		eng:     eng,
		rtt:     rtt,
		data:    map[string]string{},
		version: map[string]uint64{},
	}
}

// Set writes key=value and notifies watchers after the RTT elapses. done
// (optional) fires when the write is acknowledged.
func (s *Store) Set(key, value string, done ...func()) {
	s.sets++
	apply := func() {
		s.data[key] = value
		s.version[key]++
		for _, w := range s.watches {
			if !w.closed && strings.HasPrefix(key, w.prefix) {
				w.fn(key, value)
			}
		}
		for _, d := range done {
			d()
		}
	}
	if s.rtt <= 0 {
		apply()
		return
	}
	s.eng.After(s.rtt, apply)
}

// Get reads a key via callback after the RTT.
func (s *Store) Get(key string, fn func(value string, ok bool)) {
	s.gets++
	read := func() {
		v, ok := s.data[key]
		fn(v, ok)
	}
	if s.rtt <= 0 {
		read()
		return
	}
	s.eng.After(s.rtt, read)
}

// GetNow reads synchronously (for instance-local bookkeeping and tests).
func (s *Store) GetNow(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Delete removes a key and notifies watchers with an empty value.
func (s *Store) Delete(key string, done ...func()) {
	s.deletes++
	apply := func() {
		if _, ok := s.data[key]; !ok {
			for _, d := range done {
				d()
			}
			return
		}
		delete(s.data, key)
		s.version[key]++
		for _, w := range s.watches {
			if !w.closed && strings.HasPrefix(key, w.prefix) {
				w.fn(key, "")
			}
		}
		for _, d := range done {
			d()
		}
	}
	if s.rtt <= 0 {
		apply()
		return
	}
	s.eng.After(s.rtt, apply)
}

// Watch registers fn for every future Set/Delete under prefix; returns an
// idempotent cancel function. Cancelling removes the watch from the store
// — long-running servers register and cancel watches continuously, so a
// closed watch must not pin its callback forever.
func (s *Store) Watch(prefix string, fn func(key, value string)) (cancel func()) {
	w := &watch{prefix: prefix, fn: fn}
	s.watches = append(s.watches, w)
	return func() {
		if w.closed {
			return
		}
		w.closed = true
		// Compact into a fresh slice: a notification sweep may be ranging
		// over the old backing array right now (a callback can cancel its
		// own or a sibling watch), and the closed flag keeps that sweep
		// correct while this rebuild keeps the store from leaking.
		kept := make([]*watch, 0, len(s.watches)-1)
		for _, x := range s.watches {
			if !x.closed {
				kept = append(kept, x)
			}
		}
		s.watches = kept
	}
}

// Watches returns the number of registered (non-cancelled) watches.
func (s *Store) Watches() int { return len(s.watches) }

// Keys returns the sorted keys under prefix (synchronous; diagnostics).
func (s *Store) Keys(prefix string) []string {
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Version returns the monotone write counter for a key (0 if never set).
func (s *Store) Version(key string) uint64 { return s.version[key] }

// Ops returns cumulative (gets, sets, deletes).
func (s *Store) Ops() (gets, sets, deletes uint64) { return s.gets, s.sets, s.deletes }
