// Package metastore is the shared-memory metadata service of Fig. 5 (Redis
// in the paper's deployment): a small key/value store with prefix watches
// and simulated access latency, used by the proxy layer to synchronize
// request metadata with serving instances for load balancing and fault
// tolerance.
package metastore

import (
	"errors"
	"sort"
	"strings"
	"time"

	"aegaeon/internal/sim"
)

// ErrUnavailable is delivered by the error-aware operations while the store
// is partitioned away: the op was dropped, nothing was read or written.
var ErrUnavailable = errors.New("metastore: unavailable (network partition)")

// Store is an in-memory key/value store bound to the simulation clock.
type Store struct {
	eng     *sim.Engine
	rtt     time.Duration
	data    map[string]string
	version map[string]uint64
	watches []*watch

	// Fault windows, driven by the injection layer. While partitioned every
	// operation fails with ErrUnavailable (legacy callbacks observe a dropped
	// write / missing read); while slowed the RTT is multiplied.
	partitionedUntil sim.Time
	slowUntil        sim.Time
	slowFactor       float64

	// lastDone is the completion time of the most recently submitted op;
	// later submissions never complete before it (see run).
	lastDone sim.Time

	gets, sets, deletes, failed uint64
}

type watch struct {
	prefix string
	fn     func(key, value string)
	closed bool
}

// New creates a store with the given simulated round-trip latency per
// operation (0 for synchronous semantics).
func New(eng *sim.Engine, rtt time.Duration) *Store {
	return &Store{
		eng:     eng,
		rtt:     rtt,
		data:    map[string]string{},
		version: map[string]uint64{},
	}
}

// Partition makes the store unreachable for d: every operation submitted
// while the window is open fails with ErrUnavailable (legacy callers observe
// a dropped write or a missing read). Overlapping windows extend.
func (s *Store) Partition(d time.Duration) {
	if d <= 0 {
		return
	}
	if until := s.eng.Now() + d; until > s.partitionedUntil {
		s.partitionedUntil = until
	}
}

// SlowBy multiplies the store RTT by factor for d (a latency spike).
func (s *Store) SlowBy(factor float64, d time.Duration) {
	if factor <= 1 || d <= 0 {
		return
	}
	if until := s.eng.Now() + d; until > s.slowUntil {
		s.slowUntil = until
	}
	s.slowFactor = factor
}

// Available reports whether the store is reachable right now.
func (s *Store) Available() bool { return s.eng.Now() >= s.partitionedUntil }

// latency returns the effective per-op RTT under any active latency spike.
func (s *Store) latency() time.Duration {
	if s.eng.Now() < s.slowUntil && s.slowFactor > 1 {
		return time.Duration(float64(s.rtt) * s.slowFactor)
	}
	return s.rtt
}

// run executes op after the effective RTT (synchronously at rtt<=0).
// Availability is sampled at submission: an op issued inside a partition
// window fails even if the window closes before the RTT elapses.
//
// Completions are FIFO: an op submitted later never completes before an
// earlier one. Per-op latency alone breaks this when a latency spike expires
// between two submissions — the slowed op would land after the fast one, so
// applies (and the watch notifications they fire) would replay in an order
// that contradicts Version(). Serializing on lastDone pins notification
// order to submission order.
func (s *Store) run(op func(err error)) {
	var err error
	if !s.Available() {
		s.failed++
		err = ErrUnavailable
	}
	at := s.eng.Now() + s.latency()
	if at < s.lastDone {
		at = s.lastDone
	}
	s.lastDone = at
	if at > s.eng.Now() {
		s.eng.At(at, func() { op(err) })
		return
	}
	op(err)
}

// applySet commits a write and notifies watchers (already past the RTT).
func (s *Store) applySet(key, value string) {
	s.data[key] = value
	s.version[key]++
	for _, w := range s.watches {
		if !w.closed && strings.HasPrefix(key, w.prefix) {
			w.fn(key, value)
		}
	}
}

// Set writes key=value and notifies watchers after the RTT elapses. done
// (optional) fires when the write is acknowledged. During a partition the
// write is dropped silently; error-aware callers use SetE.
func (s *Store) Set(key, value string, done ...func()) {
	s.sets++
	s.run(func(err error) {
		if err == nil {
			s.applySet(key, value)
		}
		for _, d := range done {
			d()
		}
	})
}

// SetE is Set with failure reporting: done receives ErrUnavailable when the
// write was dropped by a partition.
func (s *Store) SetE(key, value string, done func(err error)) {
	s.sets++
	s.run(func(err error) {
		if err == nil {
			s.applySet(key, value)
		}
		if done != nil {
			done(err)
		}
	})
}

// Get reads a key via callback after the RTT. During a partition the read
// reports absence; error-aware callers use GetE.
func (s *Store) Get(key string, fn func(value string, ok bool)) {
	s.gets++
	s.run(func(err error) {
		if err != nil {
			fn("", false)
			return
		}
		v, ok := s.data[key]
		fn(v, ok)
	})
}

// GetE is Get with failure reporting: err is ErrUnavailable when the store
// was partitioned at submission time (value/ok are zero then).
func (s *Store) GetE(key string, fn func(value string, ok bool, err error)) {
	s.gets++
	s.run(func(err error) {
		if err != nil {
			fn("", false, err)
			return
		}
		v, ok := s.data[key]
		fn(v, ok, nil)
	})
}

// GetSession is the session-consistent (read-your-writes) read. On the
// single-replica store every read is already linearizable, so it aliases
// GetE; the replicated store serves it from the session's home replica once
// that replica has caught up to the session's floor.
func (s *Store) GetSession(key string, fn func(value string, ok bool, err error)) {
	s.GetE(key, fn)
}

// CompareAndSwap atomically replaces key's value with new iff the current
// value equals old (an absent key compares as ""). The comparison and the
// write happen in the same event after the RTT, so concurrent claimants
// serialize: exactly one of two racing CAS("", x) calls wins. A successful
// swap notifies watchers and bumps the version like Set.
func (s *Store) CompareAndSwap(key, old, new string, done func(swapped bool, err error)) {
	s.sets++
	s.run(func(err error) {
		if err != nil {
			if done != nil {
				done(false, err)
			}
			return
		}
		if s.data[key] != old {
			if done != nil {
				done(false, nil)
			}
			return
		}
		s.applySet(key, new)
		if done != nil {
			done(true, nil)
		}
	})
}

// GetNow reads synchronously (for instance-local bookkeeping and tests).
func (s *Store) GetNow(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Delete removes a key and notifies watchers with an empty value. During a
// partition the delete is dropped silently.
func (s *Store) Delete(key string, done ...func()) {
	s.deletes++
	s.run(func(err error) {
		if err == nil {
			if _, ok := s.data[key]; ok {
				delete(s.data, key)
				s.version[key]++
				for _, w := range s.watches {
					if !w.closed && strings.HasPrefix(key, w.prefix) {
						w.fn(key, "")
					}
				}
			}
		}
		for _, d := range done {
			d()
		}
	})
}

// Watch registers fn for every future Set/Delete under prefix; returns an
// idempotent cancel function. Cancelling removes the watch from the store
// — long-running servers register and cancel watches continuously, so a
// closed watch must not pin its callback forever.
func (s *Store) Watch(prefix string, fn func(key, value string)) (cancel func()) {
	w := &watch{prefix: prefix, fn: fn}
	s.watches = append(s.watches, w)
	return func() {
		if w.closed {
			return
		}
		w.closed = true
		// Compact into a fresh slice: a notification sweep may be ranging
		// over the old backing array right now (a callback can cancel its
		// own or a sibling watch), and the closed flag keeps that sweep
		// correct while this rebuild keeps the store from leaking.
		kept := make([]*watch, 0, len(s.watches)-1)
		for _, x := range s.watches {
			if !x.closed {
				kept = append(kept, x)
			}
		}
		s.watches = kept
	}
}

// Watches returns the number of registered (non-cancelled) watches.
func (s *Store) Watches() int { return len(s.watches) }

// Keys returns the sorted keys under prefix (synchronous; diagnostics).
func (s *Store) Keys(prefix string) []string {
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Version returns the monotone write counter for a key (0 if never set).
func (s *Store) Version(key string) uint64 { return s.version[key] }

// Ops returns cumulative (gets, sets, deletes).
func (s *Store) Ops() (gets, sets, deletes uint64) { return s.gets, s.sets, s.deletes }

// FailedOps returns how many operations a partition window dropped.
func (s *Store) FailedOps() uint64 { return s.failed }
