package metastore

import (
	"testing"
	"time"

	"aegaeon/internal/sim"
)

func TestSetGetSync(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	s.Set("req/1", "prefill0")
	if v, ok := s.GetNow("req/1"); !ok || v != "prefill0" {
		t.Fatalf("GetNow = (%q,%v)", v, ok)
	}
}

func TestRTTDelaysVisibility(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 2*time.Millisecond)
	acked := sim.Time(0)
	s.Set("k", "v", func() { acked = eng.Now() })
	if _, ok := s.GetNow("k"); ok {
		t.Fatal("write visible before RTT")
	}
	eng.Run()
	if acked != 2*time.Millisecond {
		t.Fatalf("ack at %v", acked)
	}
	var got string
	s.Get("k", func(v string, ok bool) { got = v })
	eng.Run()
	if got != "v" {
		t.Fatalf("Get = %q", got)
	}
}

func TestWatchPrefix(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	var events []string
	cancel := s.Watch("req/", func(k, v string) { events = append(events, k+"="+v) })
	s.Set("req/1", "a")
	s.Set("other/2", "b")
	s.Delete("req/1")
	eng.Run()
	if len(events) != 2 || events[0] != "req/1=a" || events[1] != "req/1=" {
		t.Fatalf("events = %v", events)
	}
	cancel()
	s.Set("req/3", "c")
	eng.Run()
	if len(events) != 2 {
		t.Fatal("cancelled watch still fired")
	}
}

func TestDeleteMissingKey(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	done := false
	s.Delete("ghost", func() { done = true })
	if !done {
		t.Fatal("delete of missing key did not ack")
	}
}

func TestKeysAndVersion(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	s.Set("a/2", "x")
	s.Set("a/1", "y")
	s.Set("b/1", "z")
	keys := s.Keys("a/")
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("keys = %v", keys)
	}
	s.Set("a/1", "y2")
	if s.Version("a/1") != 2 {
		t.Fatalf("version = %d", s.Version("a/1"))
	}
	g, st, d := s.Ops()
	if g != 0 || st != 4 || d != 0 {
		t.Fatalf("ops = %d/%d/%d", g, st, d)
	}
}

// TestWatchCancelCompacts is the regression test for the watch lifecycle
// leak: cancelled watches must be removed from the store, not merely
// flagged, or a long-running gateway accumulates dead callbacks.
func TestWatchCancelCompacts(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	var cancels []func()
	for i := 0; i < 64; i++ {
		cancels = append(cancels, s.Watch("k/", func(string, string) {}))
	}
	if got := s.Watches(); got != 64 {
		t.Fatalf("Watches() = %d, want 64", got)
	}
	for _, c := range cancels {
		c()
		c() // idempotent
	}
	if got := s.Watches(); got != 0 {
		t.Fatalf("Watches() = %d after cancelling all, want 0", got)
	}
}

// TestWatchCancelDuringSweep cancels a watch from inside its own callback
// while a notification sweep is iterating: the sweep must complete and the
// store must still compact.
func TestWatchCancelDuringSweep(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	fired := map[string]int{}
	var cancelSelf func()
	cancelSelf = s.Watch("a/", func(k, _ string) {
		fired["self"]++
		cancelSelf()
	})
	s.Watch("a/", func(k, _ string) { fired["sibling"]++ })
	s.Set("a/x", "1")
	s.Set("a/y", "2")
	if fired["self"] != 1 {
		t.Fatalf("self-cancelling watch fired %d times, want 1", fired["self"])
	}
	if fired["sibling"] != 2 {
		t.Fatalf("sibling watch fired %d times, want 2", fired["sibling"])
	}
	if got := s.Watches(); got != 1 {
		t.Fatalf("Watches() = %d, want 1", got)
	}
}

func TestDeleteNotifiesWatchersRegression(t *testing.T) {
	// Failover leases depend on delete notifications: a proxy watching
	// lease/ must see the empty-value event when an instance's lease key is
	// removed, through RTT delay and with correct version bookkeeping.
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	type ev struct {
		k, v string
		at   sim.Time
	}
	var got []ev
	s.Watch("lease/", func(k, v string) { got = append(got, ev{k, v, eng.Now()}) })
	s.Set("lease/decode0", "alive")
	eng.Run()
	s.Delete("lease/decode0")
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("events = %v", got)
	}
	if got[1].k != "lease/decode0" || got[1].v != "" {
		t.Fatalf("delete notification = %+v", got[1])
	}
	if got[1].at != got[0].at+time.Millisecond {
		t.Fatalf("delete visible at %v, set at %v", got[1].at, got[0].at)
	}
	if s.Version("lease/decode0") != 2 {
		t.Fatalf("version = %d", s.Version("lease/decode0"))
	}
}

func TestCompareAndSwap(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)

	// Absent key compares as "": the first claimant wins, the second loses.
	var r1, r2 *bool
	s.CompareAndSwap("failover/decode0", "", "proxyA", func(sw bool, err error) {
		if err != nil {
			t.Errorf("cas1 err: %v", err)
		}
		r1 = &sw
	})
	s.CompareAndSwap("failover/decode0", "", "proxyB", func(sw bool, err error) {
		if err != nil {
			t.Errorf("cas2 err: %v", err)
		}
		r2 = &sw
	})
	eng.Run()
	if r1 == nil || r2 == nil || !*r1 || *r2 {
		t.Fatalf("racing CAS: first=%v second=%v", r1, r2)
	}
	if v, _ := s.GetNow("failover/decode0"); v != "proxyA" {
		t.Fatalf("value = %q", v)
	}

	// Successful swap behaves like Set: watchers fire, version bumps.
	var notified []string
	s.Watch("failover/", func(k, v string) { notified = append(notified, v) })
	var swapped bool
	s.CompareAndSwap("failover/decode0", "proxyA", "proxyC", func(sw bool, err error) { swapped = sw })
	eng.Run()
	if !swapped || len(notified) != 1 || notified[0] != "proxyC" {
		t.Fatalf("swap=%v notified=%v", swapped, notified)
	}
	if s.Version("failover/decode0") != 2 {
		t.Fatalf("version = %d", s.Version("failover/decode0"))
	}
}

func TestPartitionDropsOps(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	s.Set("k", "v0")
	eng.Run()

	s.Partition(10 * time.Millisecond)
	if s.Available() {
		t.Fatal("store available inside partition window")
	}
	var setErr, getErr, casErr error
	var gotOK bool
	s.SetE("k", "v1", func(err error) { setErr = err })
	s.GetE("k", func(v string, ok bool, err error) { gotOK, getErr = ok, err })
	s.CompareAndSwap("k", "v0", "v2", func(sw bool, err error) { casErr = err })
	var legacy string
	var legacyOK bool
	s.Get("k", func(v string, ok bool) { legacy, legacyOK = v, ok })
	s.Delete("k")
	eng.Run()
	if setErr != ErrUnavailable || getErr != ErrUnavailable || casErr != ErrUnavailable {
		t.Fatalf("errors: set=%v get=%v cas=%v", setErr, getErr, casErr)
	}
	if gotOK || legacyOK || legacy != "" {
		t.Fatal("partitioned read returned data")
	}
	if v, ok := s.GetNow("k"); !ok || v != "v0" {
		t.Fatalf("partitioned write mutated store: (%q,%v)", v, ok)
	}
	if s.FailedOps() != 5 {
		t.Fatalf("FailedOps = %d", s.FailedOps())
	}

	// After the window the store heals.
	eng.After(20*time.Millisecond, func() {})
	eng.Run()
	if !s.Available() {
		t.Fatal("store still partitioned after window")
	}
	var err2 error
	s.SetE("k", "v3", func(err error) { err2 = err })
	eng.Run()
	if err2 != nil {
		t.Fatalf("post-heal SetE err: %v", err2)
	}
	if v, _ := s.GetNow("k"); v != "v3" {
		t.Fatalf("post-heal value = %q", v)
	}
}

func TestSlowByStretchesRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	s.SlowBy(5, 50*time.Millisecond)
	var ackAt sim.Time
	s.SetE("k", "v", func(err error) { ackAt = eng.Now() })
	eng.Run()
	if ackAt != 5*time.Millisecond {
		t.Fatalf("slowed ack at %v, want 5ms", ackAt)
	}
	// Window expiry restores the base RTT (the submit lands at 5ms+60ms).
	var ack2 sim.Time
	eng.After(60*time.Millisecond, func() {
		s.SetE("k", "v2", func(err error) { ack2 = eng.Now() })
	})
	eng.Run()
	if ack2 != 66*time.Millisecond {
		t.Fatalf("post-window ack at %v, want 66ms", ack2)
	}
}
