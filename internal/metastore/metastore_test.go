package metastore

import (
	"testing"
	"time"

	"aegaeon/internal/sim"
)

func TestSetGetSync(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	s.Set("req/1", "prefill0")
	if v, ok := s.GetNow("req/1"); !ok || v != "prefill0" {
		t.Fatalf("GetNow = (%q,%v)", v, ok)
	}
}

func TestRTTDelaysVisibility(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 2*time.Millisecond)
	acked := sim.Time(0)
	s.Set("k", "v", func() { acked = eng.Now() })
	if _, ok := s.GetNow("k"); ok {
		t.Fatal("write visible before RTT")
	}
	eng.Run()
	if acked != 2*time.Millisecond {
		t.Fatalf("ack at %v", acked)
	}
	var got string
	s.Get("k", func(v string, ok bool) { got = v })
	eng.Run()
	if got != "v" {
		t.Fatalf("Get = %q", got)
	}
}

func TestWatchPrefix(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, time.Millisecond)
	var events []string
	cancel := s.Watch("req/", func(k, v string) { events = append(events, k+"="+v) })
	s.Set("req/1", "a")
	s.Set("other/2", "b")
	s.Delete("req/1")
	eng.Run()
	if len(events) != 2 || events[0] != "req/1=a" || events[1] != "req/1=" {
		t.Fatalf("events = %v", events)
	}
	cancel()
	s.Set("req/3", "c")
	eng.Run()
	if len(events) != 2 {
		t.Fatal("cancelled watch still fired")
	}
}

func TestDeleteMissingKey(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	done := false
	s.Delete("ghost", func() { done = true })
	if !done {
		t.Fatal("delete of missing key did not ack")
	}
}

func TestKeysAndVersion(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	s.Set("a/2", "x")
	s.Set("a/1", "y")
	s.Set("b/1", "z")
	keys := s.Keys("a/")
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("keys = %v", keys)
	}
	s.Set("a/1", "y2")
	if s.Version("a/1") != 2 {
		t.Fatalf("version = %d", s.Version("a/1"))
	}
	g, st, d := s.Ops()
	if g != 0 || st != 4 || d != 0 {
		t.Fatalf("ops = %d/%d/%d", g, st, d)
	}
}

// TestWatchCancelCompacts is the regression test for the watch lifecycle
// leak: cancelled watches must be removed from the store, not merely
// flagged, or a long-running gateway accumulates dead callbacks.
func TestWatchCancelCompacts(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	var cancels []func()
	for i := 0; i < 64; i++ {
		cancels = append(cancels, s.Watch("k/", func(string, string) {}))
	}
	if got := s.Watches(); got != 64 {
		t.Fatalf("Watches() = %d, want 64", got)
	}
	for _, c := range cancels {
		c()
		c() // idempotent
	}
	if got := s.Watches(); got != 0 {
		t.Fatalf("Watches() = %d after cancelling all, want 0", got)
	}
}

// TestWatchCancelDuringSweep cancels a watch from inside its own callback
// while a notification sweep is iterating: the sweep must complete and the
// store must still compact.
func TestWatchCancelDuringSweep(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, 0)
	fired := map[string]int{}
	var cancelSelf func()
	cancelSelf = s.Watch("a/", func(k, _ string) {
		fired["self"]++
		cancelSelf()
	})
	s.Watch("a/", func(k, _ string) { fired["sibling"]++ })
	s.Set("a/x", "1")
	s.Set("a/y", "2")
	if fired["self"] != 1 {
		t.Fatalf("self-cancelling watch fired %d times, want 1", fired["self"])
	}
	if fired["sibling"] != 2 {
		t.Fatalf("sibling watch fired %d times, want 2", fired["sibling"])
	}
	if got := s.Watches(); got != 1 {
		t.Fatalf("Watches() = %d, want 1", got)
	}
}
