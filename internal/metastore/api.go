package metastore

import "time"

// API is the operation surface shared by the single-replica Store and the
// replicated quorum store (Replicated). Cluster code programs against it so
// the control plane can be promoted from one replica to a quorum without
// touching any call site.
//
// Consistency contract: Set/SetE/Get/GetE/CompareAndSwap/Delete are
// linearizable (on the quorum store they go through the leader, which serves
// reads only under a valid lease and past its term's no-op barrier).
// GetSession is the weaker read-your-writes read. GetNow/Keys/Version are
// synchronous diagnostics over committed state and take no network hop.
type API interface {
	Set(key, value string, done ...func())
	SetE(key, value string, done func(err error))
	Get(key string, fn func(value string, ok bool))
	GetE(key string, fn func(value string, ok bool, err error))
	GetSession(key string, fn func(value string, ok bool, err error))
	CompareAndSwap(key, old, new string, done func(swapped bool, err error))
	Delete(key string, done ...func())
	Watch(prefix string, fn func(key, value string)) (cancel func())
	Watches() int

	GetNow(key string) (string, bool)
	Keys(prefix string) []string
	Version(key string) uint64

	Ops() (gets, sets, deletes uint64)
	FailedOps() uint64
	Available() bool

	// Fault hooks (the cluster's fault.Surface rides on these).
	Partition(d time.Duration)
	SlowBy(factor float64, d time.Duration)
}

var (
	_ API = (*Store)(nil)
	_ API = (*Replicated)(nil)
)
