// The control-plane audit: a history recorder for every client operation's
// invocation/response window, plus the checks that turn a chaos run into a
// proof obligation — at most one leader per term, no acknowledged write
// lost, commit versions gapless, watch replay in commit order, session
// reads within their read-your-writes bounds, and a per-key Wing & Gong
// linearizability search over the acknowledged operations (P-compositional:
// keys are independent registers, so per-key witnesses compose).
package metastore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"aegaeon/internal/sim"
)

// RecOp is one recorded client operation.
type RecOp struct {
	ID            uint64
	Client        string
	Kind          opc
	Key, Val, Old string
	Inv           sim.Time
	Resp          sim.Time // response (or failure) time; -1 if still open at end of run
	Acked         bool     // got a definite success response
	Sent          bool     // at least one attempt left the client's link
	Found         bool
	Ret           string
	Swapped       bool
	Floor         uint64 // session reads: session floor at invocation
	Served        uint64 // session reads: home replica applied index at serve
}

// Election records a won election.
type Election struct {
	Term   uint64
	Leader string
	At     sim.Time
}

// WatchRec records one watch delivery (by commit index, in delivery order).
type WatchRec struct {
	Index uint64
	At    sim.Time
}

// History is the recorded run, populated when RepConfig.RecordHistory is on.
type History struct {
	on        bool
	Ops       []RecOp
	Elections []Election
	WatchRecs []WatchRec
}

func (h *History) invoke(id uint64, clientName string, kind opc, key, val, old string, floor uint64, at sim.Time) int {
	if !h.on {
		return -1
	}
	h.Ops = append(h.Ops, RecOp{
		ID: id, Client: clientName, Kind: kind, Key: key, Val: val, Old: old,
		Inv: at, Resp: -1, Floor: floor,
	})
	return len(h.Ops) - 1
}

func (h *History) respond(idx int, m respMsg, acked, sent bool, at sim.Time) {
	if !h.on || idx < 0 {
		return
	}
	op := &h.Ops[idx]
	op.Resp = at
	op.Acked = acked
	op.Sent = sent
	op.Found = m.found
	op.Ret = m.val
	op.Swapped = m.swapped
	op.Served = m.served
}

func (h *History) election(term uint64, leader string, at sim.Time) {
	if !h.on {
		return
	}
	h.Elections = append(h.Elections, Election{Term: term, Leader: leader, At: at})
}

func (h *History) watched(index uint64, at sim.Time) {
	if !h.on {
		return
	}
	h.WatchRecs = append(h.WatchRecs, WatchRec{Index: index, At: at})
}

// linVisitBudget caps the total linearizability search states per audit so
// a pathological history fails loudly instead of hanging (never hit by the
// harness's workloads; the memoized search is near-linear in practice).
const linVisitBudget = 4_000_000

// CheckControlPlane audits the recorded history against the committed
// ground truth and returns every violation found (empty = clean). It is the
// chaos harness's control-plane arm of VerifyInvariants.
func (r *Replicated) CheckControlPlane() []string {
	var v []string
	v = append(v, r.divergence...)
	h := r.hist

	// (1) At most one leader per term.
	leaders := map[uint64]string{}
	for _, e := range h.Elections {
		if prev, ok := leaders[e.Term]; ok && prev != e.Leader {
			v = append(v, fmt.Sprintf("control-plane: two leaders in term %d: %s and %s", e.Term, prev, e.Leader))
		}
		leaders[e.Term] = e.Leader
	}

	// (2) Commit sequence sanity: indices gapless, per-key versions +1 in
	// commit order.
	commitsByOp := map[uint64]int{}
	lastVer := map[string]uint64{}
	for i, c := range r.commits {
		if c.Index != uint64(i)+1 {
			v = append(v, fmt.Sprintf("control-plane: commit %d recorded at position %d", c.Index, i+1))
		}
		if c.OpID != 0 {
			commitsByOp[c.OpID]++
		}
		if c.Applied {
			if c.Version != lastVer[c.Key]+1 {
				v = append(v, fmt.Sprintf("control-plane: key %q version %d follows %d at commit %d",
					c.Key, c.Version, lastVer[c.Key], c.Index))
			}
			lastVer[c.Key] = c.Version
		}
	}

	// (3) No acknowledged write lost (and none duplicated: exactly-once).
	for _, op := range h.Ops {
		if !op.Acked {
			continue
		}
		switch op.Kind {
		case opSet, opCAS, opDelete:
			switch n := commitsByOp[op.ID]; {
			case n == 0:
				v = append(v, fmt.Sprintf("control-plane: acknowledged %s of %q (op %d by %s) never committed",
					kindName(op.Kind), op.Key, op.ID, op.Client))
			case n > 1:
				v = append(v, fmt.Sprintf("control-plane: op %d committed %d times", op.ID, n))
			}
		}
	}

	// (4) Watch replay strictly follows commit order.
	var lastW uint64
	for _, w := range h.WatchRecs {
		if w.Index <= lastW {
			v = append(v, fmt.Sprintf("control-plane: watch delivery for commit %d after commit %d", w.Index, lastW))
		}
		lastW = w.Index
	}

	// (5) Session reads: served at or past the session floor, returning the
	// committed state as of the served index.
	v = append(v, r.checkSessionReads()...)

	// (6) Per-key linearizability of the acknowledged linearizable ops.
	budget := linVisitBudget
	perKey := map[string][]linOp{}
	for _, op := range h.Ops {
		lo, use := toLinOp(op)
		if use {
			perKey[op.Key] = append(perKey[op.Key], lo)
		}
	}
	keys := make([]string, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if msg := checkLinearKey(k, perKey[k], &budget); msg != "" {
			v = append(v, msg)
		}
	}
	return v
}

func kindName(k opc) string {
	switch k {
	case opSet:
		return "set"
	case opCAS:
		return "cas"
	case opDelete:
		return "delete"
	case opGet:
		return "get"
	case opSessionGet:
		return "session-get"
	}
	return "nop"
}

func (r *Replicated) checkSessionReads() []string {
	var v []string
	// Per-key committed timeline: (commit index, value, exists) changes.
	type change struct {
		idx    uint64
		val    string
		exists bool
	}
	timeline := map[string][]change{}
	for _, c := range r.commits {
		if c.Applied {
			timeline[c.Key] = append(timeline[c.Key], change{idx: c.Index, val: c.Value, exists: !c.Deleted})
		}
	}
	stateAt := func(key string, idx uint64) (string, bool) {
		tl := timeline[key]
		i := sort.Search(len(tl), func(i int) bool { return tl[i].idx > idx })
		if i == 0 {
			return "", false
		}
		return tl[i-1].val, tl[i-1].exists
	}
	for _, op := range r.hist.Ops {
		if op.Kind != opSessionGet || !op.Acked {
			continue
		}
		if op.Served < op.Floor {
			v = append(v, fmt.Sprintf(
				"control-plane: session read of %q by %s served at index %d below floor %d",
				op.Key, op.Client, op.Served, op.Floor))
			continue
		}
		val, exists := stateAt(op.Key, op.Served)
		if op.Found != exists || (exists && op.Ret != val) {
			v = append(v, fmt.Sprintf(
				"control-plane: session read of %q by %s returned (%q,%v) but committed state at index %d is (%q,%v)",
				op.Key, op.Client, op.Ret, op.Found, op.Served, val, exists))
		}
	}
	return v
}

// linOp is one operation in the per-key linearizability search.
type linOp struct {
	kind     opc
	val, old string
	found    bool
	ret      string
	swapped  bool
	inv      sim.Time
	resp     sim.Time
	optional bool // unacked write that reached the wire: may or may not apply
}

// toLinOp classifies a recorded op for the search. Acked linearizable ops
// are required; failed mutations that reached the wire are indeterminate
// (optional, open response window); everything else carries no constraint.
func toLinOp(op RecOp) (linOp, bool) {
	lo := linOp{kind: op.Kind, val: op.Val, old: op.Old,
		found: op.Found, ret: op.Ret, swapped: op.Swapped,
		inv: op.Inv, resp: op.Resp}
	switch op.Kind {
	case opGet:
		return lo, op.Acked
	case opSessionGet:
		return lo, false // weaker consistency, audited separately
	case opSet, opCAS, opDelete:
		if op.Acked {
			return lo, true
		}
		if op.Sent {
			lo.optional = true
			lo.resp = sim.Time(math.MaxInt64)
			return lo, true
		}
		return lo, false // never left the client: definitely did not apply
	}
	return lo, false
}

// checkLinearKey runs a memoized Wing & Gong search for a legal sequential
// witness of one key's history, treating the key as a register with Set /
// Delete / CompareAndSwap / Get operations. Optional ops may be applied
// anywhere after their invocation or never; required ops must fit their
// [inv, resp] windows. Returns "" if a witness exists.
func checkLinearKey(key string, ops []linOp, budget *int) string {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].inv < ops[j].inv })
	n := len(ops)
	words := (n + 63) / 64
	done := make([]uint64, words)
	required := make([]bool, n)
	for i, op := range ops {
		required[i] = !op.optional
	}
	memo := map[string]bool{}
	exhausted := false

	isDone := func(i int) bool { return done[i/64]&(1<<(uint(i)%64)) != 0 }
	set := func(i int) { done[i/64] |= 1 << (uint(i) % 64) }
	clear := func(i int) { done[i/64] &^= 1 << (uint(i) % 64) }

	memoKey := func(val string, exists bool) string {
		var b strings.Builder
		for _, w := range done {
			fmt.Fprintf(&b, "%x.", w)
		}
		if exists {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		b.WriteString(val)
		return b.String()
	}

	var rec func(val string, exists bool) bool
	rec = func(val string, exists bool) bool {
		allRequired := true
		for i := 0; i < n; i++ {
			if required[i] && !isDone(i) {
				allRequired = false
				break
			}
		}
		if allRequired {
			return true // leftover optional ops simply never took effect
		}
		if *budget <= 0 {
			exhausted = true
			return false
		}
		*budget--
		mk := memoKey(val, exists)
		if seen, ok := memo[mk]; ok {
			return seen
		}
		// An op can linearize next only if no other outstanding op's
		// response window closed before this op was even invoked.
		minResp := sim.Time(math.MaxInt64)
		for i := 0; i < n; i++ {
			if !isDone(i) && ops[i].resp < minResp {
				minResp = ops[i].resp
			}
		}
		for i := 0; i < n && !exhausted; i++ {
			if isDone(i) || ops[i].inv > minResp {
				continue
			}
			op := ops[i]
			nv, ne, consistent := applyLin(op, val, exists)
			if !consistent {
				continue
			}
			set(i)
			ok := rec(nv, ne)
			clear(i)
			if ok {
				memo[mk] = true
				return true
			}
		}
		memo[mk] = false
		return false
	}

	cur := ""
	if rec(cur, false) {
		return ""
	}
	if exhausted {
		return fmt.Sprintf("control-plane: linearizability search budget exhausted on key %q (%d ops)", key, n)
	}
	return fmt.Sprintf("control-plane: no legal sequential witness for key %q (%d ops)", key, n)
}

// OpLatency summarizes acknowledged client-op latency from the history.
func (r *Replicated) OpLatency() (count int, p50, p99 sim.Time) {
	var lats []sim.Time
	for _, op := range r.hist.Ops {
		if op.Acked && op.Resp >= 0 {
			lats = append(lats, op.Resp-op.Inv)
		}
	}
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(q float64) sim.Time {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return len(lats), pick(0.50), pick(0.99)
}

// Unavailability clusters the failed-op windows of the history: windows
// closer than gap merge. Returns the window count and their total span —
// the measured cost of partitions and leader churn.
func (r *Replicated) Unavailability(gap sim.Time) (windows int, total sim.Time) {
	type span struct{ lo, hi sim.Time }
	var spans []span
	for _, op := range r.hist.Ops {
		if !op.Acked && op.Resp >= 0 {
			spans = append(spans, span{op.Inv, op.Resp})
		}
	}
	if len(spans) == 0 {
		return 0, 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	cur := spans[0]
	flush := func() {
		windows++
		total += cur.hi - cur.lo
	}
	for _, s := range spans[1:] {
		if s.lo <= cur.hi+gap {
			if s.hi > cur.hi {
				cur.hi = s.hi
			}
			continue
		}
		flush()
		cur = s
	}
	flush()
	return windows, total
}

// applyLin applies one op to the witness register, reporting whether its
// observed response is consistent with the current state.
func applyLin(op linOp, val string, exists bool) (newVal string, newExists, consistent bool) {
	switch op.kind {
	case opGet:
		if exists {
			return val, exists, op.found && op.ret == val
		}
		return val, exists, !op.found
	case opSet:
		return op.val, true, true
	case opDelete:
		return "", false, true
	case opCAS:
		cur := ""
		if exists {
			cur = val
		}
		would := cur == op.old
		if !op.optional && would != op.swapped {
			return val, exists, false
		}
		if would {
			return op.val, true, true
		}
		return val, exists, true
	}
	return val, exists, true
}
