// Package theory implements the active-model analysis of §3.1 and
// Appendix A.1: Theorem 3.1's closed form E[m] = M·(1 − e^{−λT}) for the
// expected number of active models, plus a Monte-Carlo simulation of the
// active-model-count process (Fig. 4) to validate it.
package theory

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// ExpectedActiveModels returns E[m] per Theorem 3.1 for M models, each with
// Poisson arrival rate lambda (req/s) and mean service time T.
func ExpectedActiveModels(M int, lambda float64, T time.Duration) float64 {
	return float64(M) * (1 - math.Exp(-lambda*T.Seconds()))
}

// PoolingBound returns the models-per-GPU ceiling implied by request-level
// auto-scaling (§3.1): M / E[m]. Request-level systems must reserve one
// instance per active model, so this bounds their pooling effectiveness.
func PoolingBound(M int, lambda float64, T time.Duration) float64 {
	em := ExpectedActiveModels(M, lambda, T)
	if em == 0 {
		return math.Inf(1)
	}
	return float64(M) / em
}

// SimulateActiveModels runs the Fig. 4 experiment: M independent M/M/∞
// model queues with arrival rate lambda and mean (exponential) service time
// T, sampled every interval over the horizon. It returns the active-model
// count time series.
func SimulateActiveModels(rng *rand.Rand, M int, lambda float64, T, horizon, interval time.Duration) []int {
	type event struct {
		at    float64
		model int
		start bool
	}
	// Generate per-model arrivals and departures, then sweep.
	var events []event
	end := horizon.Seconds()
	meanSvc := T.Seconds()
	for m := 0; m < M; m++ {
		t := 0.0
		for {
			t += rng.ExpFloat64() / lambda
			if t >= end {
				break
			}
			svc := rng.ExpFloat64() * meanSvc
			events = append(events, event{at: t, model: m, start: true})
			events = append(events, event{at: t + svc, model: m, start: false})
		}
	}
	// Sort events by time (departures are interleaved out of order).
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	inFlight := make([]int, M) // requests in service per model
	active := 0
	samples := make([]int, 0, int(horizon/interval)+1)
	next := 0
	for at := interval.Seconds(); at <= end; at += interval.Seconds() {
		for next < len(events) && events[next].at <= at {
			e := events[next]
			next++
			if e.start {
				if inFlight[e.model] == 0 {
					active++
				}
				inFlight[e.model]++
			} else {
				inFlight[e.model]--
				if inFlight[e.model] == 0 {
					active--
				}
			}
		}
		samples = append(samples, active)
	}
	return samples
}
