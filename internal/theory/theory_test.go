package theory

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// §3.1's worked example: M=100, λ=0.037, T=16.79s gives E[m] ≈ 46.55.
// (The exact formula with those rounded inputs yields 46.27; the paper's
// 46.55 reflects unrounded λ and T, so we allow ±0.5.)
func TestTheorem31Anchor(t *testing.T) {
	got := ExpectedActiveModels(100, 0.037, 16790*time.Millisecond)
	if math.Abs(got-46.55) > 0.5 {
		t.Fatalf("E[m] = %.2f, paper reports 46.55", got)
	}
}

func TestPoolingBoundAnchor(t *testing.T) {
	// §3.1: request-level pooling is bounded below 3 models per GPU.
	got := PoolingBound(100, 0.037, 16790*time.Millisecond)
	if got >= 3 || got < 2 {
		t.Fatalf("pooling bound = %.2f, want 100/46.55 ≈ 2.15 (< 3)", got)
	}
}

func TestExpectedActiveModelsLimits(t *testing.T) {
	if got := ExpectedActiveModels(100, 0, time.Second); got != 0 {
		t.Errorf("zero-rate E[m] = %v", got)
	}
	if got := ExpectedActiveModels(100, 1000, time.Hour); math.Abs(got-100) > 1e-6 {
		t.Errorf("saturated E[m] = %v, want 100", got)
	}
	if !math.IsInf(PoolingBound(100, 0, time.Second), 1) {
		t.Error("pooling bound with no load must be +Inf")
	}
}

// Fig. 4: the simulated active-model count fluctuates around E[m].
func TestSimulationMatchesTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := SimulateActiveModels(rng, 100, 0.037, 16790*time.Millisecond,
		2000*time.Second, time.Second)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Discard a warm-up prefix (the process starts empty).
	warm := samples[120:]
	var sum float64
	for _, v := range warm {
		sum += float64(v)
	}
	mean := sum / float64(len(warm))
	want := ExpectedActiveModels(100, 0.037, 16790*time.Millisecond)
	if math.Abs(mean-want) > 3 {
		t.Fatalf("simulated mean active models = %.2f, theorem gives %.2f", mean, want)
	}
	for _, v := range samples {
		if v < 0 || v > 100 {
			t.Fatalf("active count %d outside [0,100]", v)
		}
	}
}

func TestSimulationMonotoneInRate(t *testing.T) {
	mean := func(lambda float64) float64 {
		rng := rand.New(rand.NewSource(7))
		s := SimulateActiveModels(rng, 50, lambda, 10*time.Second, 1000*time.Second, time.Second)
		var sum float64
		for _, v := range s[100:] {
			sum += float64(v)
		}
		return sum / float64(len(s)-100)
	}
	lo, hi := mean(0.02), mean(0.2)
	if lo >= hi {
		t.Fatalf("active models not increasing in rate: %.2f vs %.2f", lo, hi)
	}
}
