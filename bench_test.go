package aegaeon

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"aegaeon/internal/experiments"
)

// benchOptions returns the experiment scale used by the benchmark harness.
// AEGAEON_BENCH_HORIZON_SEC overrides the trace horizon (default 90 s —
// short enough for a full `go test -bench=.` pass, long enough for the
// figures' shapes to hold).
func benchOptions() experiments.Options {
	o := experiments.Quick()
	o.Horizon = 90 * time.Second
	if v := os.Getenv("AEGAEON_BENCH_HORIZON_SEC"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec > 0 {
			o.Horizon = time.Duration(sec) * time.Second
		}
	}
	return o
}

// runExperiment executes one registered experiment per benchmark iteration
// and reports the figures' numeric cells as benchmark metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = experiments.All(o, id)
	}
	if len(tables) == 0 {
		b.Fatalf("no experiment matched %q", id)
	}
	for _, t := range tables {
		b.Logf("\n%s", t.String())
		reportTableMetrics(b, t)
	}
}

// reportTableMetrics surfaces percentage cells as per-row metrics so bench
// output carries the reproduced numbers.
func reportTableMetrics(b *testing.B, t experiments.Table) {
	for _, row := range t.Rows {
		if len(row) < 2 {
			continue
		}
		for ci := 1; ci < len(row) && ci < len(t.Header); ci++ {
			cell := row[ci]
			if !strings.HasSuffix(cell, "%") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				continue
			}
			name := sanitizeMetric(fmt.Sprintf("%s/%s", row[0], t.Header[ci]))
			b.ReportMetric(v, name)
		}
	}
}

func sanitizeMetric(s string) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '/', r == '.', r == '-', r == '+':
			return r
		}
		return '_'
	}, s)
	return s + "_%"
}

// One benchmark per table and figure of the paper's evaluation (§7), plus
// the motivating figures of §1–§3 and the design ablations.

func BenchmarkFigure1a(b *testing.B)      { runExperiment(b, "Figure 1(a)") }
func BenchmarkFigure1b(b *testing.B)      { runExperiment(b, "Figure 1(b)") }
func BenchmarkFigure4(b *testing.B)       { runExperiment(b, "Figure 4") }
func BenchmarkFigure6(b *testing.B)       { runExperiment(b, "Figure 6") }
func BenchmarkFigure7(b *testing.B)       { runExperiment(b, "Figure 7") }
func BenchmarkTable1(b *testing.B)        { runExperiment(b, "Table 1") }
func BenchmarkTable2(b *testing.B)        { runExperiment(b, "Table 2") }
func BenchmarkFigure8And10(b *testing.B)  { runExperiment(b, "Figure 8") }
func BenchmarkFigure11a(b *testing.B)     { runExperiment(b, "Figure 11(a)") }
func BenchmarkFigure11b(b *testing.B)     { runExperiment(b, "Figure 11(b)") }
func BenchmarkFigure11c(b *testing.B)     { runExperiment(b, "Figure 11(c)") }
func BenchmarkFigure12a(b *testing.B)     { runExperiment(b, "Figure 12(a)") }
func BenchmarkFigure12b(b *testing.B)     { runExperiment(b, "Figure 12(b)") }
func BenchmarkFigure12c(b *testing.B)     { runExperiment(b, "Figure 12(c)") }
func BenchmarkFigure12d(b *testing.B)     { runExperiment(b, "Figure 12(d)") }
func BenchmarkFigure13(b *testing.B)      { runExperiment(b, "Figure 13") }
func BenchmarkFigure14(b *testing.B)      { runExperiment(b, "Figure 14") }
func BenchmarkFigure15Left(b *testing.B)  { runExperiment(b, "Figure 15 (left)") }
func BenchmarkFigure15Right(b *testing.B) { runExperiment(b, "Figure 15 (right)") }
func BenchmarkFigure16(b *testing.B)      { runExperiment(b, "Figure 16") }
func BenchmarkFigure17Left(b *testing.B)  { runExperiment(b, "Figure 17 (left)") }
func BenchmarkFigure17Right(b *testing.B) { runExperiment(b, "Figure 17 (right)") }
func BenchmarkFigure18(b *testing.B)      { runExperiment(b, "Figure 18") }
func BenchmarkHeadline(b *testing.B)      { runExperiment(b, "Headline") }

func BenchmarkAblationOptimizations(b *testing.B) {
	runExperiment(b, "Ablation: auto-scaling optimizations")
}
func BenchmarkAblationGrouping(b *testing.B)     { runExperiment(b, "Ablation: MAX_GPSIZE") }
func BenchmarkAblationQMax(b *testing.B)         { runExperiment(b, "Ablation: QMAX") }
func BenchmarkAblationQuotaFormula(b *testing.B) { runExperiment(b, "Ablation: quota formula") }
func BenchmarkAblationPartition(b *testing.B)    { runExperiment(b, "Ablation: pool partition") }

// BenchmarkServeThroughput measures the simulator itself: virtual seconds
// of a 16-GPU, 40-model serving run simulated per wall-clock second.
func BenchmarkServeThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{NumModels: 40, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.1, Horizon: 60 * time.Second})
		rep, err := sys.Serve(trace)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.VirtualDuration.Seconds(), "virtual_s/op")
	}
}
