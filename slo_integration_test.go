package aegaeon_test

import (
	"math"
	"testing"
	"time"

	"aegaeon"
	"aegaeon/internal/slomon"
)

// TestSLOMonitorConvergesToTracker runs a steady workload with the live
// monitor on and cross-checks its windowed attainment against the offline
// slo.Tracker definition: with the whole run inside the slow window, the
// streamed token totals and the cumulative tracker must agree.
func TestSLOMonitorConvergesToTracker(t *testing.T) {
	sys, err := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 2, DecodeGPUs: 2, NumModels: 4, SLOMonitor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: 4 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.SLO
	if snap == nil {
		t.Fatal("SLOMonitor config produced no Report.SLO block")
	}
	if err := slomon.Validate(snap); err != nil {
		t.Fatalf("report snapshot invalid: %v", err)
	}
	if snap.Fleet.TokensMet == 0 {
		t.Fatal("monitor judged no tokens")
	}
	if snap.Fleet.Cumulative == nil {
		t.Fatal("fleet scope has no cumulative block")
	}

	// The default slow window (30m) covers the whole 4-minute run, so its
	// windowed attainment is the stream attainment; the cumulative tracker
	// judged the same tokens through the request-level mirror sites.
	scopes := append([]slomon.ScopeSnapshot{snap.Fleet}, snap.Models...)
	for _, sc := range scopes {
		label := sc.Model
		if label == "" {
			label = "fleet"
		}
		if sc.Cumulative == nil {
			t.Errorf("%s: no cumulative block", label)
			continue
		}
		var slow *slomon.WindowStats
		for i := range sc.Windowed {
			if sc.Windowed[i].Window == "slow" {
				slow = &sc.Windowed[i]
			}
		}
		if slow == nil {
			t.Fatalf("%s: no slow window", label)
		}
		if got, want := slow.Met+slow.Missed, sc.TokensMet+sc.TokensMissed; got != want {
			t.Errorf("%s: slow window holds %d tokens, stream saw %d — run escaped the window", label, got, want)
		}
		if diff := math.Abs(slow.Attainment - sc.Cumulative.Attainment); diff > 0.01 {
			t.Errorf("%s: windowed attainment %.4f vs cumulative %.4f (diff %.4f > 0.01)",
				label, slow.Attainment, sc.Cumulative.Attainment, diff)
		}
	}

	// The windowed and cumulative paths also agree on the SLO the report
	// computed for the run as a whole.
	if diff := math.Abs(rep.Attainment - snap.Fleet.Cumulative.Attainment); diff > 0.01 {
		t.Errorf("report attainment %.4f vs monitor cumulative %.4f", rep.Attainment, snap.Fleet.Cumulative.Attainment)
	}
}

// TestSLOMonitorAttributesEveryMiss overloads a small pool so switches stall
// requests past their deadlines, then checks the attribution contract: every
// missed token carries exactly one cause, the per-scope cause counters sum to
// the missed-token count, and the misses do not all fall through to unknown.
func TestSLOMonitorAttributesEveryMiss(t *testing.T) {
	sys, err := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 6, SLOMonitor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.3, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches == 0 {
		t.Fatal("6 models on 1+2 GPUs produced no switches")
	}
	snap := rep.SLO
	if snap == nil {
		t.Fatal("no SLO snapshot in report")
	}
	if snap.Fleet.TokensMissed == 0 {
		t.Skip("overloaded run produced no misses; attribution not exercised")
	}
	// Validate enforces sum(causes) == TokensMissed for every scope.
	if err := slomon.Validate(snap); err != nil {
		t.Fatalf("attribution invariant broken: %v", err)
	}
	var attributed, unknown uint64
	for cause, n := range snap.Fleet.Causes {
		if cause == "unknown" {
			unknown += n
		} else {
			attributed += n
		}
	}
	if attributed == 0 {
		t.Errorf("all %d fleet misses classified unknown; span join found nothing", unknown)
	}
	// Model scopes partition the fleet's misses.
	var modelMissed uint64
	for _, sc := range snap.Models {
		modelMissed += sc.TokensMissed
	}
	if modelMissed != snap.Fleet.TokensMissed {
		t.Errorf("per-model misses sum to %d, fleet saw %d", modelMissed, snap.Fleet.TokensMissed)
	}
}
