package aegaeon_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aegaeon"
	"aegaeon/internal/obs"
)

// TestPerfettoExportEndToEnd runs a real multi-model serve with tracing on
// and checks the exported Chrome trace: it validates structurally, has a
// track per device engine and per request, and every completed switch
// carries its stage-level cost breakdown.
func TestPerfettoExportEndToEnd(t *testing.T) {
	sys, err := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 4, Tracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches == 0 {
		t.Fatal("multi-model run produced no switches; the trace exercises nothing")
	}

	c := sys.Collector()
	if c == nil {
		t.Fatal("Tracing config did not install a collector")
	}
	switches, total := c.Switches()
	if total == 0 || len(switches) == 0 {
		t.Fatal("collector recorded no switches")
	}
	for _, sw := range switches {
		if sw.End < sw.Start {
			continue // still in flight at end of run
		}
		if len(sw.Stages) == 0 {
			t.Errorf("switch %s %s->%s has no stage breakdown", sw.Instance, sw.From, sw.To)
		}
	}

	var buf bytes.Buffer
	if err := sys.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePerfetto(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	engineTracks := map[string]bool{}
	deviceProcs, reqTracks, switchSlices := 0, 0, 0
	for _, ev := range f.TraceEvents {
		name, _ := ev.Args["name"].(string)
		switch {
		case ev.Ph == "M" && ev.Name == "process_name" && strings.HasPrefix(name, "gpu "):
			deviceProcs++
		case ev.Ph == "M" && ev.Name == "thread_name":
			switch name {
			case "compute", "h2d", "d2h":
				engineTracks[name] = true
			default:
				if strings.Contains(name, "(") { // "reqID (model)"
					reqTracks++
				}
			}
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "switch "):
			switchSlices++
		}
	}
	if deviceProcs != 3 {
		t.Errorf("device processes = %d, want 3 (1 prefill + 2 decode)", deviceProcs)
	}
	for _, e := range []string{"compute", "h2d", "d2h"} {
		if !engineTracks[e] {
			t.Errorf("no %s engine track", e)
		}
	}
	if reqTracks == 0 {
		t.Error("no per-request tracks")
	}
	if switchSlices == 0 {
		t.Error("no switch slices")
	}
}

// TestWritePerfettoWithoutTracing checks the export fails cleanly when the
// system was built without Config.Tracing.
func TestWritePerfettoWithoutTracing(t *testing.T) {
	sys, err := aegaeon.New(aegaeon.Config{PrefillGPUs: 1, DecodeGPUs: 1, NumModels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Collector() != nil {
		t.Fatal("collector present without Tracing")
	}
	if err := sys.WritePerfetto(&bytes.Buffer{}); err == nil {
		t.Fatal("export without tracing did not error")
	}
}
