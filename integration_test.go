package aegaeon_test

import (
	"bytes"
	"testing"
	"time"

	"aegaeon"
)

// TestEndToEndPipeline exercises the full public workflow: generate a
// trace, persist it, reload it, serve it on Aegaeon and two baselines, and
// cross-check the reports.
func TestEndToEndPipeline(t *testing.T) {
	build := func() *aegaeon.System {
		sys, err := aegaeon.New(aegaeon.Config{
			PrefillGPUs: 2, DecodeGPUs: 3, NumModels: 12, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	trace := build().GenerateTrace(aegaeon.TraceSpec{
		RatePerModel: 0.1, Horizon: 3 * time.Minute, Dataset: aegaeon.ShareGPTOx2(),
	})

	// Persist and reload.
	var buf bytes.Buffer
	if err := aegaeon.WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	reloaded, err := aegaeon.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(trace) {
		t.Fatalf("trace reload lost requests: %d != %d", len(reloaded), len(trace))
	}

	// Serve the reloaded trace on all systems.
	aeg, err := build().Serve(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	sllm, err := build().ServeBaseline(aegaeon.ServerlessLLM, reloaded)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := build().ServeBaseline(aegaeon.MuxServe, reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if aeg.Completed != aeg.Requests {
		t.Fatalf("aegaeon completed %d/%d", aeg.Completed, aeg.Requests)
	}
	// 12 models on 5 GPUs with 2x outputs: Aegaeon must lead both baselines
	// (the paper's headline direction, on its hardest dataset).
	if aeg.Attainment <= sllm.Attainment {
		t.Errorf("Aegaeon %.3f <= ServerlessLLM %.3f", aeg.Attainment, sllm.Attainment)
	}
	if aeg.Attainment <= mux.Attainment {
		t.Errorf("Aegaeon %.3f <= MuxServe %.3f", aeg.Attainment, mux.Attainment)
	}
	// Serving the same reloaded trace twice is deterministic.
	again, err := build().Serve(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if again.Attainment != aeg.Attainment || again.Completed != aeg.Completed {
		t.Fatal("reloaded-trace serving not deterministic")
	}
}

// TestFailoverUnderLoadPublicAPI drives the crash-recovery path from the
// public API while the system is saturated.
func TestFailoverUnderLoadPublicAPI(t *testing.T) {
	sys, err := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 2, DecodeGPUs: 3, NumModels: 9, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.15, Horizon: 3 * time.Minute})
	sys.InjectDecodeFailure(60*time.Second, 0)
	sys.InjectPrefillFailure(90*time.Second, 0)
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests {
		t.Fatalf("completed %d/%d after double failure", rep.Completed, rep.Requests)
	}
}
