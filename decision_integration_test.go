package aegaeon

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"aegaeon/internal/decision"
)

// runWhyTrace builds a switch-heavy system (8 models on 2 decode GPUs forces
// constant auto-scaling) under overload and faults, serves the same seeded
// trace, and returns the exported decision journal bytes.
func runWhyTrace(t *testing.T, seed int64) ([]byte, Report) {
	t.Helper()
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 8,
		Seed:      seed,
		Decisions: true,
		Overload:  true,
		Faults:    "fetchslow@40s+20s*4,crash@70s:decode1",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.08, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.WriteDecisions(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestDecisionJournalDeterminism is the replayability regression test: two
// runs of the identical seeded switch-heavy workload must produce
// byte-identical journal exports. Any nondeterminism in a policy site — map
// iteration in a candidate set, wall-clock leakage into a timestamp — shows
// up here as a diff.
func TestDecisionJournalDeterminism(t *testing.T) {
	a, repA := runWhyTrace(t, 11)
	b, repB := runWhyTrace(t, 11)
	if repA.Switches == 0 {
		t.Fatal("workload produced no switches; the test is not exercising the policy sites")
	}
	if repA.Switches != repB.Switches || repA.Completed != repB.Completed {
		t.Fatalf("replay diverged before the journal: %d/%d switches, %d/%d completed",
			repA.Switches, repB.Switches, repA.Completed, repB.Completed)
	}
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		ctx := func(s []byte) string {
			h := hi
			if h > len(s) {
				h = len(s)
			}
			return string(s[lo:h])
		}
		t.Fatalf("journals differ at byte %d:\n  run A: ...%s...\n  run B: ...%s...",
			i, ctx(a), ctx(b))
	}

	// A different seed must actually change the journal — otherwise the
	// equality above proves nothing.
	c, _ := runWhyTrace(t, 12)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical journals")
	}
}

// TestDecisionExportValidates: the bytes WriteDecisions emits round-trip
// through the same structural gate aegaeon-trace -mode why applies.
func TestDecisionExportValidates(t *testing.T) {
	raw, rep := runWhyTrace(t, 5)
	var exp decision.Export
	if err := json.Unmarshal(raw, &exp); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if err := decision.Validate(&exp); err != nil {
		t.Fatalf("export fails validation: %v", err)
	}
	if exp.SchemaVersion != decision.SchemaVersion {
		t.Fatalf("schema version %d, want %d", exp.SchemaVersion, decision.SchemaVersion)
	}
	if int(exp.Total) == 0 || len(exp.Chains) == 0 {
		t.Fatal("empty export from a busy run")
	}
	// Every completed request left a chain ending in a terminal record.
	if len(exp.Chains) < rep.Completed {
		t.Fatalf("%d chains for %d completed requests", len(exp.Chains), rep.Completed)
	}
}

// TestDecisionsDisabledByDefault: without Config.Decisions the journal
// accessor is nil and the export refuses, keeping the zero-config path free
// of journaling.
func TestDecisionsDisabledByDefault(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 1, NumModels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Decisions() != nil {
		t.Fatal("journal present without Config.Decisions")
	}
	if err := sys.WriteDecisions(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteDecisions succeeded on a journal-free system")
	}
}
