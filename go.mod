module aegaeon

go 1.22
