package aegaeon

import (
	"testing"
	"time"
)

// The full spot-market flow through the public API: heterogeneous classes,
// spot pricing, a reclaim delivered via the fault-spec grammar, and the
// market snapshot joined against the fleet ledger in the report.
func TestMarketReclaimThroughPublicAPI(t *testing.T) {
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 3,
		Models:        SmallModels(6),
		Market:        true,
		MarketClasses: "H800,A10",
		MarketSpot:    true,
		Faults:        "reclaim@45s+5s:decode1,throttle@20s+15s*4:decode0",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.3, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests {
		t.Fatalf("completed %d/%d through a reclaim", rep.Completed, rep.Requests)
	}
	if rep.FaultsInjected != 2 {
		t.Fatalf("faults injected = %d, want 2", rep.FaultsInjected)
	}
	m := rep.Market
	if m == nil {
		t.Fatal("Report.Market nil with Config.Market set")
	}
	if !m.Spot || !m.Aware {
		t.Fatalf("snapshot spot=%v aware=%v", m.Spot, m.Aware)
	}
	if m.Stats.Preemptions != 1 || m.Stats.Revocations != 1 {
		t.Fatalf("preemptions=%d revocations=%d", m.Stats.Preemptions, m.Stats.Revocations)
	}
	if m.Stats.EvacuatedKVBytes == 0 {
		t.Fatal("aware reclaim evacuated no KV")
	}
	if m.Stats.Throttles != 1 {
		t.Fatalf("throttles = %d", m.Stats.Throttles)
	}
	if m.Stats.PriceTicks == 0 {
		t.Fatal("spot pricing ticked zero times")
	}
	if len(m.Devices) != 4 {
		t.Fatalf("%d devices in snapshot", len(m.Devices))
	}
	// Market implies fleet accounting, and class economics must join against
	// it: two classes, each with cost and tokens.
	if rep.Fleet == nil {
		t.Fatal("Config.Market did not imply FleetAccounting")
	}
	if len(m.Classes) != 2 {
		t.Fatalf("%d classes, want 2 (H800, A10)", len(m.Classes))
	}
	for _, c := range m.Classes {
		if c.CostDollars <= 0 {
			t.Fatalf("class %s has no cost integral", c.Class)
		}
		if c.Tokens == 0 || c.DollarsPer1KTokens <= 0 {
			t.Fatalf("class %s: tokens=%d $/1k=%v", c.Class, c.Tokens, c.DollarsPer1KTokens)
		}
	}
}

// Reliable arm: market on, spot off. Flat on-demand rates, no reclaim risk,
// and reclaim faults are still deliverable (a reserved device can be taken
// back too — e.g. maintenance), priced at on-demand.
func TestMarketReliableArmFlatRates(t *testing.T) {
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 2,
		Models: SmallModels(4),
		Market: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.1, Horizon: time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Market
	if m == nil {
		t.Fatal("Report.Market nil")
	}
	if m.Spot || m.Stats.PriceTicks != 0 {
		t.Fatalf("reliable arm: spot=%v ticks=%d", m.Spot, m.Stats.PriceTicks)
	}
	for _, d := range m.Devices {
		if d.RateDollarsPerHour != 12.0 { // H800 on-demand
			t.Fatalf("device %s rate %v, want flat on-demand 12.0", d.Device, d.RateDollarsPerHour)
		}
		if !d.Eligible {
			t.Fatalf("device %s ineligible in reliable arm", d.Device)
		}
	}
}

// Spot-naive arm: reclaim loses GPU-resident KV to the crash path, and the
// run still completes via recovery.
func TestMarketNaiveArmLosesKV(t *testing.T) {
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 3,
		Models:      SmallModels(6),
		Market:      true,
		MarketSpot:  true,
		MarketNaive: true,
		Faults:      "reclaim@45s+5s:decode1",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.3, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests {
		t.Fatalf("completed %d/%d", rep.Completed, rep.Requests)
	}
	m := rep.Market
	if m.Aware {
		t.Fatal("naive arm reported aware")
	}
	if m.Stats.EvacuatedKVBytes != 0 {
		t.Fatalf("naive arm evacuated %d bytes", m.Stats.EvacuatedKVBytes)
	}
	if m.Stats.LostKVBytes == 0 {
		t.Fatal("naive reclaim lost nothing — instance idle at t=45s?")
	}
	if m.Stats.DeadlinesMissed != 1 {
		t.Fatalf("deadlines missed = %d", m.Stats.DeadlinesMissed)
	}
}

// Reclaim faults without a market model must be rejected at injection.
func TestReclaimFaultNeedsMarket(t *testing.T) {
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 4,
		Faults: "reclaim@30s+5s:decode0",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.05, Horizon: time.Minute})
	if _, err := sys.Serve(trace); err == nil {
		t.Fatal("reclaim injected without Config.Market")
	}
}
