package aegaeon_test

import (
	"fmt"
	"time"

	"aegaeon"
)

// The minimal serving loop: build a pool, synthesize market traffic, serve
// it in virtual time.
func Example() {
	sys, err := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 6, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{
		RatePerModel: 0.1, Horizon: 2 * time.Minute,
	})
	rep, err := sys.Serve(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d/%d, attainment above 90%%: %v\n",
		rep.Completed, rep.Requests, rep.Attainment > 0.9)
	// Output: completed 73/73, attainment above 90%: true
}

// Comparing against a baseline on identical traffic.
func Example_baseline() {
	sys, _ := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 10, Seed: 2,
	})
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	mux, _ := sys.ServeBaseline(aegaeon.MuxServe, trace)
	aeg, _ := sys.Serve(trace)
	fmt.Printf("Aegaeon beats MuxServe on 10 models / 3 GPUs: %v\n",
		aeg.Attainment > mux.Attainment)
	// Output: Aegaeon beats MuxServe on 10 models / 3 GPUs: true
}

// Surviving an instance crash mid-run.
func Example_failover() {
	sys, _ := aegaeon.New(aegaeon.Config{
		PrefillGPUs: 1, DecodeGPUs: 3, NumModels: 6, Seed: 3,
	})
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	sys.InjectDecodeFailure(60*time.Second, 1)
	rep, _ := sys.Serve(trace)
	fmt.Printf("all requests completed despite the crash: %v\n",
		rep.Completed == rep.Requests)
	// Output: all requests completed despite the crash: true
}
