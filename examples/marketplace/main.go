// Marketplace: the paper's motivating scenario (§1–§3). A market of many
// sporadically invoked models is served by Aegaeon's token-level
// auto-scaling and by the two baseline approaches on the same 16 GPUs,
// alongside the §3.1 active-model analysis that explains the gap.
package main

import (
	"fmt"
	"log"
	"time"

	"aegaeon"
	"aegaeon/internal/theory"
	"aegaeon/internal/workload"
)

func main() {
	const (
		nModels = 48
		rps     = 0.1 // per-model req/s — sporadic invocations
		horizon = 5 * time.Minute
	)

	// §3.1: how many models are active at once, and what does that cap
	// request-level pooling at?
	em := theory.ExpectedActiveModels(nModels, rps, 17*time.Second)
	fmt.Printf("market: %d models at %.2f req/s each\n", nModels, rps)
	fmt.Printf("Theorem 3.1: E[active models] = %.1f -> request-level pooling bounded at %.1f models/GPU\n",
		em, float64(nModels)/em)

	// Fig. 1(a)-style skew: a Zipf marketplace's cold tail.
	cdf := workload.MarketCDF(workload.ZipfWeights(779, 2))
	fmt.Printf("marketplace skew: bottom 94.1%% of models receive %.2f%% of requests\n\n",
		100*(1-cdf(1-0.941)))

	// One shared trace; each system gets a fresh deployment over 16 GPUs.
	newSys := func() *aegaeon.System {
		s, err := aegaeon.New(aegaeon.Config{NumModels: nModels, PrefillGPUs: 6, DecodeGPUs: 10})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	trace := newSys().GenerateTrace(aegaeon.TraceSpec{RatePerModel: rps, Horizon: horizon})
	fmt.Printf("trace: %d requests over %v\n\n", len(trace), horizon)

	aeg, err := newSys().Serve(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-30s %6.1f%% token SLO attainment (%d/%d requests)\n",
		"Aegaeon (token-level)", 100*aeg.Attainment, aeg.Completed, aeg.Requests)

	for _, b := range []aegaeon.Baseline{aegaeon.ServerlessLLM, aegaeon.ServerlessLLMPlus, aegaeon.MuxServe} {
		rep, err := newSys().ServeBaseline(b, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %6.1f%% token SLO attainment (%d/%d requests)\n",
			string(b), 100*rep.Attainment, rep.Completed, rep.Requests)
	}

	fmt.Printf("\nAegaeon packs %.1f models per decoding GPU; dedicated serving would reserve >= %d GPUs\n",
		float64(nModels)/10, nModels)
	fmt.Printf("pooling saving vs dedicated: %.0f%% fewer GPUs (paper's deployment: 82%%)\n",
		100*(1-16.0/float64(nModels)))
}
