// Burst: the Fig. 1(b) scenario — a hot model's traffic intermittently
// exceeds its reserved capacity. A pooled Aegaeon deployment absorbs the
// bursts with the idle capacity of colocated cold models, where a dedicated
// reservation either over-provisions or violates SLOs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"aegaeon"
	"aegaeon/internal/workload"
)

func main() {
	const horizon = 5 * time.Minute

	// One hot model with MMPP bursty traffic plus seven cold models with
	// sporadic invocations, sharing 1 prefill + 3 decoding GPUs.
	sys, err := aegaeon.New(aegaeon.Config{
		NumModels:   12,
		PrefillGPUs: 1,
		DecodeGPUs:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	models := sys.Models()
	hot := models[0]

	rng := rand.New(rand.NewSource(7))
	hotTrace, rates := workload.BurstTrace(rng, hot.Name,
		0.8 /*base*/, 4.0, /*burst req/s*/
		60*time.Second, 20*time.Second, horizon, workload.ShareGPT())

	var coldNames []string
	for _, m := range models[1:] {
		coldNames = append(coldNames, m.Name)
	}
	coldTrace := workload.PoissonTrace(rng, coldNames, 0.08, horizon, workload.ShareGPT())
	trace := workload.Merge(hotTrace, coldTrace)

	var peak, sum float64
	for _, r := range rates {
		sum += r
		if r > peak {
			peak = r
		}
	}
	fmt.Printf("hot model %q: mean %.2f req/s, peak %.0f req/s in bursts\n",
		hot.Name, sum/float64(len(rates)), peak)
	fmt.Printf("cold models: %d models at 0.08 req/s each\n", len(coldNames))
	fmt.Printf("trace: %d requests (%d hot, %d cold) on 4 GPUs\n\n",
		len(trace), len(hotTrace), len(coldTrace))

	rep, err := sys.Serve(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Aegaeon pooled:   %.1f%% token SLO attainment, %d/%d requests\n",
		100*rep.Attainment, rep.Completed, rep.Requests)

	// The same trace under request-level auto-scaling: bursts of the hot
	// model monopolize instances while cold models queue (HOL blocking).
	base, err := sys.ServeBaseline(aegaeon.ServerlessLLM, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ServerlessLLM:    %.1f%% token SLO attainment, %d/%d requests\n",
		100*base.Attainment, base.Completed, base.Requests)

	fmt.Printf("\ntoken-level preemption lets burst traffic borrow the cold models' slack\n" +
		"without dedicating burst-sized reservations to the hot model (Fig. 1b)\n")
}
