// Quickstart: build an Aegaeon pool, generate a multi-model market
// workload, serve it in virtual time, and print the SLO report — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"aegaeon"
)

func main() {
	// A small pool: 1 prefill + 3 decoding H800 GPUs serving 12 models —
	// already far beyond the two-models-per-GPU multiplexing limit (§2.3).
	sys, err := aegaeon.New(aegaeon.Config{
		GPU:         "H800",
		PrefillGPUs: 1,
		DecodeGPUs:  3,
		NumModels:   12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("serving models:")
	for _, m := range sys.Models() {
		fmt.Printf("  %-28s %5.1f GB weights, KV %s\n",
			m.Name, float64(m.WeightBytes())/1e9, m.KVShape())
	}

	trace := sys.GenerateTrace(aegaeon.TraceSpec{
		RatePerModel: 0.1, // sporadic market traffic (§2.2)
		Horizon:      5 * time.Minute,
	})
	fmt.Printf("\ngenerated %d requests over 5 virtual minutes\n", len(trace))

	rep, err := sys.Serve(trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted          %d/%d requests\n", rep.Completed, rep.Requests)
	fmt.Printf("SLO attainment     %.1f%% of tokens on time (TTFT 10s, TBT 100ms)\n", 100*rep.Attainment)
	fmt.Printf("TTFT attainment    %.1f%% (mean %v)\n", 100*rep.TTFTAttainment, rep.MeanTTFT.Round(time.Millisecond))
	fmt.Printf("model switches     %d preemptive scale-ups (p50 %v, p99 %v)\n",
		rep.Switches, rep.SwitchP50.Round(time.Millisecond), rep.SwitchP99.Round(time.Millisecond))
	fmt.Printf("models per GPU     %.1f (12 models on 4 GPUs)\n", 12.0/4)
	fmt.Printf("latency breakdown  %v\n", sys.Breakdown())
}
