// Strictslo: the Fig. 13 / Fig. 17 exploration — how far GPU pooling can be
// pushed as the SLO tightens, and where static multiplexing takes over.
// Sweeps the TTFT/TBT targets from loose (2x) to the paper's strictest
// setting (0.2x: 2 s TTFT, 20 ms TBT) at a fixed pooling degree.
package main

import (
	"fmt"
	"log"
	"time"

	"aegaeon"
)

func main() {
	const (
		nModels = 24
		horizon = 4 * time.Minute
	)
	fmt.Printf("%d models on 6 GPUs (2 prefill + 4 decode), RPS 0.1, ShareGPT\n\n", nModels)
	fmt.Printf("%-10s %-22s %10s %12s\n", "SLO scale", "targets", "Aegaeon", "MuxServe")

	for _, scale := range []float64{2.0, 1.0, 0.5, 0.3, 0.2} {
		slo := aegaeon.DefaultSLO().Scale(scale)

		newSys := func() *aegaeon.System {
			s, err := aegaeon.New(aegaeon.Config{
				NumModels:   nModels,
				PrefillGPUs: 2,
				DecodeGPUs:  4,
				SLO:         slo,
			})
			if err != nil {
				log.Fatal(err)
			}
			return s
		}
		trace := newSys().GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: horizon})

		aeg, err := newSys().Serve(trace)
		if err != nil {
			log.Fatal(err)
		}
		mux, err := newSys().ServeBaseline(aegaeon.MuxServe, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f TTFT %-6v TBT %-6v %9.1f%% %11.1f%%\n",
			scale, slo.TTFT, slo.TBT, 100*aeg.Attainment, 100*mux.Attainment)
	}

	fmt.Printf("\npaper (Fig. 13): Aegaeon leads down to 0.3x; at 0.2x the per-token slack\n")
	fmt.Printf("vanishes and zero-switch-cost multiplexing has a place — but it can only\n")
	fmt.Printf("place ~2 models per GPU, so it serves a fraction of the market here.\n")
}
