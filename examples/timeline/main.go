// Timeline: reproduces the spirit of Fig. 2 — the difference between
// request-level and token-level auto-scaling, shown as an actual event
// timeline from the scheduler's trace. Three models share one decoding GPU;
// under token-level scaling their turns interleave (every model makes
// progress every round), where request-level scaling would serialize whole
// requests.
package main

import (
	"fmt"
	"log"
	"time"

	"aegaeon/internal/core"
	"aegaeon/internal/engine"
	"aegaeon/internal/latency"
	"aegaeon/internal/model"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/trace"
	"aegaeon/internal/workload"
)

func main() {
	models := model.SmallMix(3)
	tr := trace.New(1 << 14)

	se := sim.NewEngine(1)
	sys := core.NewSystem(se, core.Config{
		Prof:       latency.H800(),
		Opts:       engine.AllOptimizations(),
		NumPrefill: 1,
		NumDecode:  1, // a single decoding GPU shared by all three models
		Models:     models,
		SLO:        slo.Default(),
		Tracer:     tr,
	})

	// One long request per model, arriving a second apart — the Fig. 2
	// scenario: A, then B, then C, all wanting the same GPU.
	var reqs []workload.Request
	for i, m := range models {
		reqs = append(reqs, workload.Request{
			ID:           fmt.Sprintf("req-%c", 'A'+i),
			Model:        m.Name,
			Arrival:      time.Duration(i) * time.Second,
			InputTokens:  512,
			OutputTokens: 400,
		})
	}
	if err := sys.Submit(reqs); err != nil {
		log.Fatal(err)
	}
	se.Run()
	sys.Finalize(se.Now())

	fmt.Println("token-level auto-scaling timeline (decode GPU, first 40 turn events):")
	n := 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.KindTurnStart, trace.KindSwitchStart, trace.KindSwitchDone:
			fmt.Printf("  %s\n", e)
			n++
		}
		if n >= 40 {
			break
		}
	}
	fmt.Printf("\n%s\n\n", tr.Summary())

	fmt.Println("per-request first and last token (all three interleave on one GPU):")
	for _, r := range sys.Requests() {
		fmt.Printf("  %s (%s): TTFT %7v, last token at %7v, %d tokens\n",
			r.ID, r.Model.Name,
			(r.TokenTimes[0] - r.Arrival).Round(time.Millisecond),
			(r.TokenTimes[len(r.TokenTimes)-1] - r.Arrival).Round(time.Millisecond),
			len(r.TokenTimes))
	}
	fmt.Printf("\ntoken SLO attainment: %.1f%% — request-level scaling would serve\n", 100*sys.Attainment())
	fmt.Println("B and C only after A's ~400-token decode finished (Fig. 2a's HOL blocking)")
}
