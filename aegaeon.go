// Package aegaeon is a Go reproduction of "Aegaeon: Effective GPU Pooling
// for Concurrent LLM Serving on the Market" (SOSP '25): a multi-model LLM
// serving system that auto-scales models at token granularity, running on a
// deterministic discrete-event simulation of the GPU substrate.
//
// The public API builds serving systems, generates market-style workloads,
// serves them in virtual time, and reports per-token SLO attainment:
//
//	sys, _ := aegaeon.New(aegaeon.Config{
//	    GPU: "H800", PrefillGPUs: 2, DecodeGPUs: 6, NumModels: 20,
//	})
//	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.1, Horizon: 5 * time.Minute})
//	report, _ := sys.Serve(trace)
//	fmt.Printf("attainment: %.1f%%\n", 100*report.Attainment)
//
// The internal packages implement the paper's full stack: the token-level
// scheduler (Algorithms 1–2), preemptive auto-scaling with component reuse,
// explicit memory management and fine-grained KV-cache synchronization
// (§5), the ServerlessLLM/MuxServe baselines, and one experiment runner per
// table and figure in §7.
package aegaeon

import (
	"fmt"
	"io"
	"strings"
	"time"

	"aegaeon/internal/baselines"
	"aegaeon/internal/core"
	"aegaeon/internal/decision"
	"aegaeon/internal/engine"
	"aegaeon/internal/fault"
	"aegaeon/internal/fleetobs"
	"aegaeon/internal/latency"
	"aegaeon/internal/market"
	"aegaeon/internal/metrics"
	"aegaeon/internal/model"
	"aegaeon/internal/obs"
	"aegaeon/internal/overload"
	"aegaeon/internal/prefixcache"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/slomon"
	"aegaeon/internal/workload"
)

// Model re-exports the model descriptor type.
type Model = model.Model

// SLO re-exports the (TTFT, TBT) target pair.
type SLO = slo.SLO

// Request re-exports the workload request type.
type Request = workload.Request

// FaultStats re-exports the fault-injection and recovery counters.
type FaultStats = fault.Stats

// Dataset re-exports the length-distribution interface.
type Dataset = workload.Dataset

// PrefixStats re-exports the global prefix cache's counters: lookups, hits,
// prefill tokens saved, per-tier residency and evictions, promotions.
type PrefixStats = prefixcache.Stats

// DefaultSLO returns the paper's production targets: TTFT 10 s, TBT 100 ms.
func DefaultSLO() SLO { return slo.Default() }

// ShareGPT and variants re-export the synthetic datasets of §7.1.
func ShareGPT() Dataset    { return workload.ShareGPT() }
func ShareGPTIx2() Dataset { return workload.ShareGPTIx2() }
func ShareGPTOx2() Dataset { return workload.ShareGPTOx2() }

// Catalog returns the built-in model catalog (Table 1 models and friends).
func Catalog() []*Model { return model.Catalog() }

// WriteTrace encodes a trace as JSON Lines (one request per line).
func WriteTrace(w io.Writer, trace []Request) error { return workload.WriteTrace(w, trace) }

// ReadTrace decodes and validates a JSON-Lines trace, sorted by arrival.
func ReadTrace(r io.Reader) ([]Request, error) { return workload.ReadTrace(r) }

// MarketModels returns n market models in the paper's primary 6–14B range.
func MarketModels(n int) []*Model { return model.MarketMix(n) }

// SmallModels returns n models in the 6–8B range — the mix that fits every
// built-in market device class, including the 24 GB consumer tiers.
func SmallModels(n int) []*Model { return model.SmallMix(n) }

// MarketClassNames lists the built-in device classes accepted by
// Config.MarketClasses, in capability order.
func MarketClassNames() []string { return market.ClassNames() }

// Config configures an Aegaeon serving system.
type Config struct {
	// GPU selects the hardware profile: "H800" (default), "A10", or "H20".
	GPU string
	// TP is the tensor-parallel degree per instance (default 1).
	TP int
	// PrefillGPUs and DecodeGPUs partition the pool (§4.1). Defaults: 6+10.
	PrefillGPUs int
	DecodeGPUs  int
	// Models to serve. If empty, NumModels market models are generated.
	Models    []*Model
	NumModels int
	// SLO targets; zero value uses DefaultSLO.
	SLO SLO
	// Seed fixes the simulation's randomness (default 1).
	Seed int64
	// DisableOptimizations turns off the §5 auto-scaling optimizations
	// (useful for ablation; production config leaves this false).
	DisableOptimizations bool
	// Colocate enables the §8 extension: keep several models' weights
	// resident and switch between them with ~1ms activations (weights
	// residency trades against KV capacity; see the §8 ablation).
	Colocate bool
	// Tracing enables the observability collector: per-request span
	// timelines, per-device-engine op timelines, and switch-cost
	// attribution, exportable as Perfetto-loadable Chrome trace JSON via
	// WritePerfetto. Off by default; the disabled path adds no overhead.
	Tracing bool
	// SLOMonitor enables the live SLO monitor: sliding-window per-model and
	// fleet-wide attainment, multi-window burn-rate alert states, and
	// per-cause attribution of every missed token (joined against the span
	// timelines, so enabling it also turns on the observability collector).
	// The final windowed state is reported in Report.SLO; the live monitor
	// itself is reachable via Monitor.
	SLOMonitor bool
	// Overload enables overload control: a brownout controller coupled to
	// the live SLO monitor's burn-rate alerts steps through degradation
	// levels (shed low-priority → shrink decode lengths → freeze cold-model
	// loads → admit nothing), a deadline-aware reaper sheds doomed queued
	// requests mid-wait, and prefill grouping becomes priority-then-slack
	// aware. Implies SLOMonitor (the controller is driven by its alert
	// states). Service tiers come from each Request's Priority field — see
	// AssignPriorities. The controller's arc and shed accounting land in
	// the Report.
	Overload bool
	// PrefixCache enables the global prefix cache: prompt prefixes computed
	// by earlier requests are indexed (chunked block-aligned hashing, so
	// partial matches hit) over a host tier in the unified CPU KV pool with
	// per-instance device copies earned by reuse, and prefill skips matched
	// tokens, charging the tier-dependent copy instead. Multi-turn and
	// shared-system-prompt traces (see TraceSpec.Workload) are where it pays.
	PrefixCache bool
	// PrefixRouting additionally makes prefill dispatch cache-aware: requests
	// are steered toward the instance whose device tier holds their longest
	// prefix, as a bounded credit against queue depth — never an override of
	// load balance or admission control. Implies PrefixCache.
	PrefixRouting bool
	// Decisions enables the decision-provenance journal: every policy
	// decision — admission, overload ladder transitions, shedding, prefill
	// routing (with per-candidate score terms), decode placement, preemptive
	// switches, KV and prefix-cache eviction victims, spot evacuation
	// ordering — records its evidence, stamped with virtual time and linked
	// to request IDs. The journal is exportable via WriteDecisions and
	// reachable live via Decisions; records are deterministic functions of
	// the seed. Off by default; the disabled path is allocation-free.
	Decisions bool
	// FleetAccounting enables the fleet utilization ledger: every simulated
	// GPU-second is classified into one exhaustive, mutually exclusive state
	// (idle, prefill, decode, each §5 switch stage, weight-load, KV
	// transfer, faulted) under a hard conservation invariant — per-device
	// state integrals sum exactly to wall time — with goodput tokens, KV
	// pool watermarks, and a cost integral attributed per device and model.
	// The final snapshot lands in Report.Fleet; the live ledger is reachable
	// via Fleet. Off by default; the disabled path adds no overhead.
	FleetAccounting bool
	// Faults is a fault schedule injected during Serve, as a comma-separated
	// spec of "kind@at[+dur][*factor][:target]" items — e.g.
	// "crash@40s:decode0,xfer@60s+5s,fetchslow@90s+30s*4". Kinds: crash,
	// xfer, fetchfail, fetchslow, partition, storeslow (the store kinds need
	// the cluster proxy and are rejected here), plus the spot kinds reclaim
	// ("reclaim@45s+5s:decode1" — preemption notice, grace, hard revocation;
	// needs Config.Market) and throttle ("throttle@60s+30s*4:decode0" —
	// thermal slowdown). Crashed instances are detected after a fixed delay,
	// then their in-flight requests recover onto survivors: host-resident KV
	// resumes decoding, the rest recompute via prefill. Empty disables fault
	// injection entirely.
	Faults string
	// Market enables the spot-market fleet model: per-device market classes
	// (see MarketClasses), spot price traces feeding the fleet cost
	// integral, preemption notices with KV evacuation ahead of the reclaim
	// deadline, and capability scoring. Implies FleetAccounting (class
	// economics join against the ledger's cost and goodput integrals). The
	// final market snapshot — preemption records, evacuated-vs-lost KV
	// bytes, per-class $-per-1k-tokens — lands in Report.Market.
	Market bool
	// MarketClasses is a comma-separated device-class list cycled across the
	// pool in build order, e.g. "H800,A10,RTX4090" (see MarketClassNames).
	// Empty means a homogeneous H800 fleet. Each instance runs its class's
	// hardware profile end to end — compute, PCIe, and a VRAM split sized
	// for the class — so every model must fit the smallest class (the 24 GB
	// consumer tiers fit SmallModels; MarketModels needs ≥48 GB).
	MarketClasses string
	// MarketSpot activates spot pricing and reclaim risk: per-device price
	// traces walk on the simulation clock, and placement discounts devices
	// by their class's preemption hazard. Off = flat on-demand rates (the
	// reliable arm).
	MarketSpot bool
	// MarketNaive turns preemption-aware placement and KV evacuation OFF
	// while keeping the market model on: reclaim notices are ignored until
	// the revocation fires, losing everything GPU-resident to the crash
	// path. This is the spot-naive baseline arm the market bench compares
	// against; production spot configs leave it false.
	MarketNaive bool
}

// System is a ready-to-serve Aegaeon deployment in virtual time.
type System struct {
	cfg      Config
	eng      *sim.Engine
	sys      *core.System
	models   []*Model
	served   bool
	flt      *fault.Faults
	sched    []fault.Fault
	injector *fault.Injector
	ovl      *overload.Controller
	fleet    *fleetobs.Ledger
	mkt      *market.Market
	dec      *decision.Journal
}

// New builds a system.
func New(cfg Config) (*System, error) {
	if cfg.GPU == "" {
		cfg.GPU = "H800"
	}
	prof, err := latency.ProfileByName(cfg.GPU)
	if err != nil {
		return nil, err
	}
	if cfg.TP < 1 {
		cfg.TP = 1
	}
	if cfg.PrefillGPUs == 0 {
		cfg.PrefillGPUs = 6
	}
	if cfg.DecodeGPUs == 0 {
		cfg.DecodeGPUs = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var ovl *overload.Controller
	if cfg.Overload {
		// The brownout controller is driven by the monitor's burn-rate
		// alerts, so overload control implies the live SLO monitor (set
		// before the collector/monitor construction below keys off it).
		cfg.SLOMonitor = true
		ovl = overload.NewController(overload.Config{})
	}
	models := cfg.Models
	if len(models) == 0 {
		n := cfg.NumModels
		if n <= 0 {
			n = 8
		}
		models = model.MarketMix(n)
	}
	if (cfg.SLO == SLO{}) {
		cfg.SLO = slo.Default()
	}
	opts := engine.AllOptimizations()
	if cfg.DisableOptimizations {
		opts = engine.Unoptimized()
	}
	opts.Colocate = cfg.Colocate
	se := sim.NewEngine(cfg.Seed)
	var col *obs.Collector
	if cfg.Tracing || cfg.SLOMonitor {
		col = obs.New(obs.Options{})
	}
	var flt *fault.Faults
	var sched []fault.Fault
	if cfg.Faults != "" {
		var err error
		sched, err = fault.ParseSpec(cfg.Faults)
		if err != nil {
			return nil, err
		}
		flt = fault.New(se, cfg.Seed)
	}
	var mon *slomon.Monitor
	if cfg.SLOMonitor {
		mcfg := slomon.Config{Objective: 0.99, Source: col}
		if flt != nil {
			f := flt
			mcfg.FaultActive = func(model, instance string) bool {
				return f.TransferFailing(instance) || f.FetchFailing(model)
			}
		}
		mon = slomon.New(mcfg)
	}
	var pfx *prefixcache.Config
	if cfg.PrefixCache || cfg.PrefixRouting {
		pfx = &prefixcache.Config{Routing: cfg.PrefixRouting}
	}
	if cfg.Market {
		// Class economics join against the ledger's cost and goodput
		// integrals, so the market implies fleet accounting.
		cfg.FleetAccounting = true
	}
	var fleet *fleetobs.Ledger
	if cfg.FleetAccounting {
		fleet = fleetobs.New(se)
	}
	var mkt *market.Market
	if cfg.Market {
		classes, err := market.ParseClasses(cfg.MarketClasses)
		if err != nil {
			return nil, err
		}
		// Fail early with a usable message when a class's VRAM cannot hold
		// the largest model shard plus a KV slab; the core would otherwise
		// panic deriving the per-class VRAM split. SmallModels fits every
		// built-in class, including 24 GB consumer cards.
		var maxShard int64
		biggest := ""
		for _, m := range models {
			if s := m.ShardWeightBytes(cfg.TP); s > maxShard {
				maxShard, biggest = s, m.Name
			}
		}
		for _, c := range classes {
			usable := int64(float64(c.Prof.VRAMBytes) * 0.9)
			if usable-(maxShard+maxShard/16) < 64<<20 {
				return nil, fmt.Errorf(
					"aegaeon: model %s (%.1f GB shard) does not fit market class %s (%.1f GB VRAM); use smaller models (e.g. SmallModels) or bigger classes",
					biggest, float64(maxShard)/1e9, c.Name, float64(c.Prof.VRAMBytes)/1e9)
			}
		}
		mkt = market.New(se, fleet, market.Config{
			Classes: classes,
			Spot:    cfg.MarketSpot,
			Aware:   !cfg.MarketNaive,
			Seed:    cfg.Seed,
		})
	}
	var dec *decision.Journal
	if cfg.Decisions {
		dec = decision.New(decision.Options{})
	}
	sys := core.NewSystem(se, core.Config{
		Prof:       prof,
		TP:         cfg.TP,
		Opts:       opts,
		NumPrefill: cfg.PrefillGPUs,
		NumDecode:  cfg.DecodeGPUs,
		Models:     models,
		SLO:        cfg.SLO,
		Obs:        col,
		SLOMon:     mon,
		Fleet:      fleet,
		Faults:     flt,
		Overload:   ovl,
		Prefix:     pfx,
		Market:     mkt,
		Decisions:  dec,
	})
	return &System{cfg: cfg, eng: se, sys: sys, models: models, flt: flt, sched: sched, ovl: ovl, fleet: fleet, mkt: mkt, dec: dec}, nil
}

// Models returns the models the system serves.
func (s *System) Models() []*Model { return s.models }

// WorkloadKind selects a synthetic arrival pattern.
type WorkloadKind string

// Workload kinds. The session-structured kinds (multi-turn chat, agentic
// tool-call loops, shared-system-prompt tenants) re-send growing or shared
// prefixes and are what the prefix cache accelerates.
const (
	Poisson      WorkloadKind = "poisson"
	MultiTurn    WorkloadKind = "multiturn"
	Agentic      WorkloadKind = "agentic"
	SharedPrompt WorkloadKind = "sharedprompt"
)

// TraceSpec describes a synthetic workload.
type TraceSpec struct {
	// RatePerModel is the per-model arrival rate in req/s — of requests for
	// Poisson and SharedPrompt, of sessions for MultiTurn, of tasks for
	// Agentic.
	RatePerModel float64
	// Horizon is the trace length.
	Horizon time.Duration
	// Dataset defaults to ShareGPT.
	Dataset Dataset
	// Workload selects the arrival pattern; empty means Poisson.
	Workload WorkloadKind
	// SystemPromptTokens sets the shared per-model prefix length for the
	// session workloads. Defaults: 128 (MultiTurn), 512 (Agentic), 2048
	// (SharedPrompt); ignored for Poisson.
	SystemPromptTokens int
}

// GenerateTrace synthesizes a workload for the system's models. Unknown
// Workload kinds panic: the set is closed and checked at call sites.
func (s *System) GenerateTrace(spec TraceSpec) []Request {
	ds := spec.Dataset
	if ds == nil {
		ds = workload.ShareGPT()
	}
	names := make([]string, len(s.models))
	for i, m := range s.models {
		names[i] = m.Name
	}
	rng := s.eng.Rand()
	switch spec.Workload {
	case Poisson, "":
		return workload.PoissonTrace(rng, names, spec.RatePerModel, spec.Horizon, ds)
	case MultiTurn:
		sys := spec.SystemPromptTokens
		if sys <= 0 {
			sys = 128
		}
		return workload.MultiTurnTrace(rng, names, spec.RatePerModel, spec.Horizon, ds,
			workload.MultiTurnConfig{SystemPromptTokens: sys})
	case Agentic:
		return workload.AgenticTrace(rng, names, spec.RatePerModel, spec.Horizon, ds,
			workload.AgenticConfig{SystemPromptTokens: spec.SystemPromptTokens})
	case SharedPrompt:
		sys := spec.SystemPromptTokens
		if sys <= 0 {
			sys = 2048
		}
		return workload.SharedPrefixTrace(rng, names, spec.RatePerModel, spec.Horizon, sys, ds)
	default:
		panic(fmt.Sprintf("aegaeon: unknown workload kind %q", spec.Workload))
	}
}

// Report summarizes a serving run.
type Report struct {
	// Attainment is the token-level SLO attainment in [0,1] (§2.1).
	Attainment float64
	// TTFTAttainment is the fraction of first tokens within the TTFT target.
	TTFTAttainment float64
	// MeanTTFT is the average time to first token; TTFTP50/P99 its
	// percentiles.
	MeanTTFT time.Duration
	TTFTP50  time.Duration
	TTFTP99  time.Duration
	// Completed is the number of fully served requests.
	Completed int
	// Requests is the number submitted.
	Requests int
	// VirtualDuration is the simulated time the run covered.
	VirtualDuration time.Duration
	// SwitchP50/P99 are exposed preemptive auto-scaling latencies.
	SwitchP50, SwitchP99 time.Duration
	// Switches counts preemptive model scale-ups across instances.
	Switches uint64
	// Failed counts requests that ended cleanly rejected (only possible
	// under fault injection, e.g. when every decode instance is dead).
	Failed int
	// FaultsInjected is how many scheduled faults fired; Faults holds the
	// full fault and recovery accounting. Both are zero without Config.Faults.
	FaultsInjected int
	Faults         FaultStats
	// SLO is the live monitor's final snapshot — windowed attainment,
	// burn-rate alert states, and missed-token cause counters — taken at the
	// end of the run. Nil without Config.SLOMonitor.
	SLO *slomon.Snapshot
	// GeneratedTokens counts tokens actually produced — the run's real
	// throughput numerator, unaffected by shed requests whose unproduced
	// tokens are judged as SLO misses.
	GeneratedTokens int
	// OverloadLevel is the brownout controller's final degradation level
	// ("normal" … "admit_none"); OverloadTransitions counts level changes
	// during the run; Sheds breaks overload-shed requests down by typed
	// reason; AttainmentByPriority splits token attainment by service tier.
	// Zero/nil without Config.Overload.
	OverloadLevel        string
	OverloadTransitions  int
	Sheds                map[string]int
	AttainmentByPriority map[string]float64
	// Prefix is the global prefix cache's final counters — hit ratio, prefill
	// tokens saved, tier residency and evictions. Nil without
	// Config.PrefixCache/PrefixRouting.
	Prefix *PrefixStats
	// Fleet is the fleet utilization ledger's final snapshot: per-device
	// state integrals summing exactly to wall time, goodput tokens per
	// GPU-second per model, switch-overhead ratio, KV watermarks, and the
	// GPU-hours/cost integral. Its ConservationErrors field is empty in any
	// correct build. Nil without Config.FleetAccounting.
	Fleet *fleetobs.Snapshot
	// Market is the spot-market model's final snapshot: per-device market
	// state and price, preemption records with evacuated-vs-lost KV byte
	// accounting, and per-class economics ($-per-1k-tokens joined against
	// the fleet ledger). Nil without Config.Market.
	Market *market.Snapshot
}

// Serve runs the trace to completion in virtual time and reports. A System
// is single-use: build a fresh one per run.
func (s *System) Serve(trace []Request) (Report, error) {
	if s.served {
		return Report{}, fmt.Errorf("aegaeon: system already served a trace; build a new one")
	}
	s.served = true
	if err := s.sys.Submit(trace); err != nil {
		return Report{}, err
	}
	if s.mkt != nil {
		// Price traces must be bounded or the event loop never drains: run
		// them past the last arrival with slack for the tail to decode.
		horizon := 2 * time.Minute
		if len(trace) > 0 {
			horizon += trace[len(trace)-1].Arrival
		}
		s.mkt.Start(horizon)
	}
	if len(s.sched) > 0 {
		s.injector = fault.NewInjector(s.eng, sysSurface{s}, s.sched)
		s.injector.Arm()
	}
	s.eng.Run()
	s.sys.Finalize(s.eng.Now())
	var switches uint64
	for _, e := range s.sys.Engines() {
		switches += e.Stats().Switches
	}
	cdf := s.sys.SwitchLatencyCDF()
	rep := Report{
		Attainment:      s.sys.Attainment(),
		TTFTAttainment:  s.sys.Tracker().TTFTAttainment(),
		MeanTTFT:        s.sys.Tracker().MeanTTFT(),
		TTFTP50:         s.sys.Tracker().TTFTQuantile(0.5),
		TTFTP99:         s.sys.Tracker().TTFTQuantile(0.99),
		Completed:       s.sys.Completed(),
		Requests:        len(trace),
		VirtualDuration: s.eng.Now(),
		Switches:        switches,
		Failed:          s.sys.FailedRequests(),
	}
	if s.flt != nil {
		rep.Faults = s.flt.Snapshot()
	}
	if s.injector != nil {
		rep.FaultsInjected = s.injector.Injected()
		if errs := s.injector.Errors(); len(errs) > 0 {
			return rep, fmt.Errorf("aegaeon: %d faults failed to inject, first: %w", len(errs), errs[0])
		}
	}
	if cdf.N() > 0 {
		rep.SwitchP50 = time.Duration(cdf.Quantile(0.5) * float64(time.Second))
		rep.SwitchP99 = time.Duration(cdf.Quantile(0.99) * float64(time.Second))
	}
	if mon := s.sys.Monitor(); mon != nil {
		rep.SLO = mon.Snapshot(s.eng.Now())
	}
	for _, r := range s.sys.Requests() {
		rep.GeneratedTokens += len(r.TokenTimes)
	}
	if pc := s.sys.PrefixCache(); pc != nil {
		st := pc.Stats()
		rep.Prefix = &st
	}
	if s.fleet != nil {
		rep.Fleet = s.fleet.Snapshot(s.eng.Now())
	}
	if s.mkt != nil {
		rep.Market = s.mkt.Snapshot(s.eng.Now(), rep.Fleet)
	}
	if s.ovl != nil {
		snap := s.ovl.Snapshot()
		rep.OverloadLevel = snap.Level
		rep.OverloadTransitions = len(snap.Transitions)
		rep.Sheds = s.sys.OverloadSheds()
		rep.AttainmentByPriority = make(map[string]float64, workload.NumPriorities)
		for p := workload.Priority(0); p < workload.NumPriorities; p++ {
			met, missed := s.sys.PriorityTracker(p).Tokens()
			att := 1.0
			if met+missed > 0 {
				att = float64(met) / float64(met+missed)
			}
			rep.AttainmentByPriority[p.String()] = att
		}
	}
	return rep, nil
}

// AssignPriorities stamps a service-tier mix onto a trace in place using the
// system's seeded randomness: highFrac of requests become high priority,
// lowFrac low, the rest normal. Overload control sheds lower tiers first.
func (s *System) AssignPriorities(trace []Request, highFrac, lowFrac float64) {
	workload.AssignPriorities(s.eng.Rand(), trace, highFrac, lowFrac)
}

// Overload returns the brownout controller, or nil unless the system was
// built with Config.Overload.
func (s *System) Overload() *overload.Controller { return s.ovl }

// Monitor returns the live SLO monitor, or nil unless the system was built
// with Config.SLOMonitor.
func (s *System) Monitor() *slomon.Monitor { return s.sys.Monitor() }

// Fleet returns the fleet utilization ledger, or nil unless the system was
// built with Config.FleetAccounting.
func (s *System) Fleet() *fleetobs.Ledger { return s.fleet }

// Market returns the live spot-market model, or nil unless the system was
// built with Config.Market.
func (s *System) Market() *market.Market { return s.mkt }

// Decisions returns the decision-provenance journal, or nil unless the system
// was built with Config.Decisions.
func (s *System) Decisions() *decision.Journal { return s.dec }

// WriteDecisions exports the decision journal as versioned, deterministic
// JSON: the flat record ring in sequence order plus every retained
// per-request chain. `aegaeon-trace -mode why` reads this format.
func (s *System) WriteDecisions(w io.Writer) error {
	if s.dec == nil {
		return fmt.Errorf("aegaeon: decision journal disabled; build the system with Config.Decisions")
	}
	return s.dec.WriteJSON(w)
}

// EventsProcessed returns how many discrete events the simulation kernel has
// fired — the numerator of the kernel's events/sec self-metric.
func (s *System) EventsProcessed() uint64 { return s.eng.Processed() }

// Breakdown returns the request latency breakdown after Serve (Fig. 14).
func (s *System) Breakdown() *metrics.Breakdown { return s.sys.Breakdown() }

// Collector returns the observability collector, or nil unless the system
// was built with Config.Tracing.
func (s *System) Collector() *obs.Collector { return s.sys.Collector() }

// WritePerfetto exports everything the collector captured — request span
// trees, per-device-engine op timelines, and stage-attributed model
// switches — as Chrome trace-event JSON loadable at ui.perfetto.dev. When the
// decision journal is also on, each journaled decision appears as an instant
// event on its request's track.
func (s *System) WritePerfetto(w io.Writer) error {
	c := s.sys.Collector()
	if c == nil {
		return fmt.Errorf("aegaeon: tracing disabled; build the system with Config.Tracing")
	}
	var ann []obs.RequestInstant
	if s.dec != nil {
		for _, ch := range s.dec.Chains() {
			for _, rec := range ch.Records {
				args := map[string]any{"outcome": rec.Outcome}
				if rec.Reason != "" {
					args["reason"] = rec.Reason
				}
				if rec.Instance != "" {
					args["instance"] = rec.Instance
				}
				ann = append(ann, obs.RequestInstant{
					Request: ch.Request,
					Name:    "decision:" + rec.Kind,
					At:      rec.At,
					Args:    args,
				})
			}
		}
	}
	return c.WritePerfettoAnnotated(w, ann)
}

// crashDetectionDelay emulates the proxy's health-lease detection window
// when running single-system (no cluster in front): a crashed instance's
// orphans sit undispatched this long before recovery begins.
const crashDetectionDelay = time.Second

// sysSurface adapts a single System to the fault injector. Store faults
// (partition, storeslow) need the cluster proxy's metadata store and are
// rejected; everything else maps onto the core runtime directly.
type sysSurface struct{ s *System }

var (
	_ fault.Surface     = sysSurface{}
	_ fault.SpotSurface = sysSurface{}
)

func (ss sysSurface) Crash(target string) error {
	// Accept cluster-style "deployment/instance" targets for spec reuse.
	if _, inst, ok := strings.Cut(target, "/"); ok {
		target = inst
	}
	if err := ss.s.sys.CrashInstanceNamed(target); err != nil {
		return err
	}
	name := target
	ss.s.eng.After(crashDetectionDelay, func() {
		ss.s.sys.RecoverOrphansOf(name)
	})
	return nil
}

func (ss sysSurface) FailTransfers(target string, d sim.Time) error {
	ss.s.flt.FailTransfers(target, d)
	return nil
}

func (ss sysSurface) FailFetch(model string, d sim.Time) error {
	ss.s.flt.FailFetch(model, d)
	return nil
}

func (ss sysSurface) SlowFetch(factor float64, d sim.Time) error {
	ss.s.flt.SlowFetch(factor, d)
	return nil
}

func (ss sysSurface) Reclaim(target string, grace sim.Time) error {
	if _, inst, ok := strings.Cut(target, "/"); ok {
		target = inst
	}
	return ss.s.sys.ReclaimInstance(target, grace)
}

func (ss sysSurface) Throttle(target string, factor float64, d sim.Time) error {
	if _, inst, ok := strings.Cut(target, "/"); ok {
		target = inst
	}
	return ss.s.sys.ThrottleInstance(target, factor, d)
}

func (ss sysSurface) PartitionStore(sim.Time) error {
	return fmt.Errorf("no metadata store in single-system mode; partition faults need the cluster gateway")
}

func (ss sysSurface) SlowStore(float64, sim.Time) error {
	return fmt.Errorf("no metadata store in single-system mode; storeslow faults need the cluster gateway")
}

// InjectDecodeFailure schedules a crash of decoding instance idx at the
// given virtual time (before calling Serve). The instance's requests are
// recovered onto survivors: sequences whose KV lives in the unified CPU
// cache resume; the rest recompute via prefill. Fig. 5's fault tolerance.
func (s *System) InjectDecodeFailure(at time.Duration, idx int) {
	s.eng.At(at, func() {
		if _, _, err := s.sys.FailDecodeInstance(idx); err != nil {
			panic(err)
		}
	})
}

// InjectPrefillFailure schedules a crash of prefill instance idx at the
// given virtual time (before calling Serve).
func (s *System) InjectPrefillFailure(at time.Duration, idx int) {
	s.eng.At(at, func() {
		if _, err := s.sys.FailPrefillInstance(idx); err != nil {
			panic(err)
		}
	})
}

// Baseline identifies a comparison system.
type Baseline string

// Comparison baselines (§7.1).
const (
	ServerlessLLM     Baseline = "ServerlessLLM"
	ServerlessLLMPlus Baseline = "ServerlessLLM+"
	MuxServe          Baseline = "MuxServe"
)

// ServeBaseline serves the trace on a baseline system over the same GPU
// count (prefill+decode, undivided) and returns its report.
func (s *System) ServeBaseline(b Baseline, trace []Request) (Report, error) {
	prof, err := latency.ProfileByName(s.cfg.GPU)
	if err != nil {
		return Report{}, err
	}
	se := sim.NewEngine(s.cfg.Seed)
	gpus := s.cfg.PrefillGPUs + s.cfg.DecodeGPUs
	var srv baselines.Server
	var trk *slo.Tracker
	switch b {
	case ServerlessLLM, ServerlessLLMPlus:
		sys := baselines.NewSLLM(se, baselines.SLLMConfig{
			Prof: prof, TP: s.cfg.TP, GPUs: gpus, Models: s.models,
			SLO: s.cfg.SLO, SJF: b == ServerlessLLMPlus,
		})
		srv, trk = sys, sys.Tracker()
	case MuxServe:
		sys := baselines.NewMux(se, baselines.MuxConfig{
			Prof: prof, TP: s.cfg.TP, GPUs: gpus, Models: s.models, SLO: s.cfg.SLO,
		})
		srv, trk = sys, sys.Tracker()
	default:
		return Report{}, fmt.Errorf("aegaeon: unknown baseline %q", b)
	}
	if err := srv.Submit(trace); err != nil {
		return Report{}, err
	}
	se.Run()
	srv.Finalize(se.Now())
	return Report{
		Attainment:      srv.Attainment(),
		TTFTAttainment:  trk.TTFTAttainment(),
		MeanTTFT:        trk.MeanTTFT(),
		TTFTP50:         trk.TTFTQuantile(0.5),
		TTFTP99:         trk.TTFTQuantile(0.99),
		Completed:       srv.Completed(),
		Requests:        len(trace),
		VirtualDuration: se.Now(),
	}, nil
}
