package aegaeon_test

import (
	"testing"
	"time"

	"aegaeon"
)

// TestOverloadControlProtectsHighTier is the end-to-end overload contract:
// the same 3x-capacity trace served with and without overload control. With
// control on, the high tier's attainment must beat the uncontrolled fleet
// number, typed sheds must appear, and every request must still reach a
// terminal state (completed + failed = submitted).
func TestOverloadControlProtectsHighTier(t *testing.T) {
	build := func(overload bool) *aegaeon.System {
		sys, err := aegaeon.New(aegaeon.Config{
			PrefillGPUs: 2, DecodeGPUs: 2, NumModels: 8, Seed: 3, Overload: overload,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	gen := build(false)
	trace := gen.GenerateTrace(aegaeon.TraceSpec{RatePerModel: 0.9, Horizon: time.Minute})
	gen.AssignPriorities(trace, 0.2, 0.3)

	unRep, err := build(false).Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	ctlRep, err := build(true).Serve(trace)
	if err != nil {
		t.Fatal(err)
	}

	if ctlRep.Completed+ctlRep.Failed != ctlRep.Requests {
		t.Fatalf("controlled run leaked requests: %d completed + %d failed != %d",
			ctlRep.Completed, ctlRep.Failed, ctlRep.Requests)
	}
	total := 0
	for _, n := range ctlRep.Sheds {
		total += n
	}
	if total == 0 {
		t.Fatal("3x overload shed nothing — control is not engaging")
	}
	hi, ok := ctlRep.AttainmentByPriority["high"]
	if !ok {
		t.Fatalf("no high-tier attainment in report: %v", ctlRep.AttainmentByPriority)
	}
	if hi <= unRep.Attainment {
		t.Fatalf("high tier %.4f not protected over uncontrolled fleet %.4f", hi, unRep.Attainment)
	}
	if hi < 0.9 {
		t.Fatalf("high-tier attainment %.4f below the 90%% overload floor", hi)
	}
	if low := ctlRep.AttainmentByPriority["low"]; low >= hi {
		t.Fatalf("low tier %.4f not degraded below high %.4f — tiers are not differentiating", low, hi)
	}
	if ctlRep.OverloadLevel == "" {
		t.Fatal("controlled run reported no overload level")
	}
	if ctlRep.OverloadTransitions == 0 {
		t.Fatal("brownout controller never left normal under 3x load")
	}
	t.Logf("uncontrolled fleet %.2f%%; controlled high %.2f%% low %.2f%%, level %s, sheds %v",
		100*unRep.Attainment, 100*hi, 100*ctlRep.AttainmentByPriority["low"],
		ctlRep.OverloadLevel, ctlRep.Sheds)
}
