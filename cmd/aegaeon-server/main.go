// Command aegaeon-server exposes the simulator over HTTP:
//
//	POST /v1/simulate         run a simulation, get the SLO report
//	GET  /v1/models           the built-in model catalog
//	POST /v1/trace/summarize  characterize a JSON-Lines trace
//	GET  /healthz             liveness
//
// Example:
//
//	aegaeon-server -addr :8080 &
//	curl -s localhost:8080/v1/simulate -d '{"num_models":20,"rps":0.1,"horizon_sec":120}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"aegaeon/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:         *addr,
		Handler:      httpapi.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Minute, // simulations can take a while
	}
	log.Printf("aegaeon-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
