// Command aegaeon-bench regenerates the paper's tables and figures from the
// simulated substrate and prints them as text tables, optionally also
// writing CSV files for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aegaeon/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened horizons")
	only := flag.String("only", "", "run only experiments whose ID has this prefix (e.g. 'Figure 11')")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}
	o := experiments.Defaults()
	if *quick {
		o = experiments.Quick()
	}
	start := time.Now()
	n := 0
	experiments.Run(o, *only, func(t experiments.Table) {
		n++
		fmt.Println(t.String())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.FileStem()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			}
		}
		fmt.Fprintf(os.Stderr, "[%6.1fs] finished %s\n", time.Since(start).Seconds(), t.ID)
	})
	if n == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known IDs:\n", *only)
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		os.Exit(1)
	}
}
