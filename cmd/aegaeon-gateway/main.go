// Command aegaeon-gateway serves live traffic against an Aegaeon cluster:
// the deterministic simulation core replays against the wall clock while
// HTTP clients stream completions token by token.
//
//	POST /v1/completions   {"model":"...","max_tokens":16,"stream":true} → SSE
//	GET  /v1/models        served model catalog with deployment routing
//	GET  /metrics          Prometheus text metrics
//	GET  /healthz          liveness (503 while draining)
//	GET  /debug/trace      recent events, request timelines, switch records
//	GET  /debug/requests/X one request's span tree
//	GET  /debug/gpus       per-engine utilization and occupant models
//	GET  /debug/perfetto   Chrome trace-event JSON export
//	GET  /debug/slo        live SLO snapshot: windowed attainment, alerts, causes
//	GET  /debug/slo/alerts burn-rate alert states only
//	GET  /debug/overload   brownout level, rejection counters, retry budget (with -overload)
//	GET  /debug/fleet      fleet utilization ledger: per-device GPU-second accounting (with -fleet)
//	GET  /debug/market     spot-market state: per-device price/eligibility, preemption records, class economics (with -market)
//	GET  /debug/pprof/     net/http/pprof profiling handlers (with -pprof)
//	GET  /debug/dash       dependency-free live HTML dashboard (SSE; fleet heatmap with -fleet)
//	GET  /debug            index of every registered debug endpoint
//	GET  /debug/decisions  decision-provenance ring: recent records, kind/outcome counters
//	GET  /debug/why/X      one request's decision chain joined with its span timeline
//
// Example:
//
//	aegaeon-gateway -addr :8080 -models 8 -speedup 10 &
//	curl -sN localhost:8080/v1/completions \
//	    -d '{"model":"'$(curl -s localhost:8080/v1/models | jq -r .data[0].id)'","max_tokens":8,"stream":true}'
//
// SIGINT/SIGTERM drain gracefully: admission stops (503), in-flight decodes
// finish at full simulation speed, then the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aegaeon/internal/cluster"
	"aegaeon/internal/decision"
	"aegaeon/internal/fleetobs"
	"aegaeon/internal/gateway"
	"aegaeon/internal/latency"
	"aegaeon/internal/market"
	"aegaeon/internal/model"
	"aegaeon/internal/obs"
	"aegaeon/internal/overload"
	"aegaeon/internal/prefixcache"
	"aegaeon/internal/sim"
	"aegaeon/internal/slo"
	"aegaeon/internal/slomon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpu := flag.String("gpu", "H800", "GPU profile: H800, A10, H20")
	tp := flag.Int("tp", 1, "tensor parallel degree")
	numModels := flag.Int("models", 8, "number of market models to serve")
	prefill := flag.Int("prefill", 2, "prefill instances")
	decode := flag.Int("decode", 4, "decoding instances")
	seed := flag.Int64("seed", 1, "simulation seed")
	speedup := flag.Float64("speedup", 1, "virtual seconds per wall second")
	rate := flag.Float64("rate", 0, "admission rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 16, "admission rate limit burst")
	maxQueue := flag.Int("max-queue", 256, "max admitted requests per model")
	maxInflight := flag.Int("max-inflight", 1024, "max admitted requests total")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline")
	noTrace := flag.Bool("no-trace", false, "disable the observability collector and /debug endpoints")
	noSLO := flag.Bool("no-slo", false, "disable the live SLO monitor and /debug/slo + /debug/dash endpoints")
	objective := flag.Float64("slo-objective", 0.99, "SLO attainment objective for burn-rate alerting, in (0,1)")
	overloadOn := flag.Bool("overload", false, "enable overload control: predictive admission, priority shedding, brownout (implies SLO monitoring)")
	retryRatio := flag.Float64("retry-ratio", 0.1, "retry budget deposit per fresh admission (with -overload)")
	prefixOn := flag.Bool("prefix", false, "enable the global prefix cache with cache-aware routing: pass session_id/turn on completions to reuse earlier turns' KV; adds /debug/prefix and aegaeon_prefix_* metrics")
	fleetOn := flag.Bool("fleet", false, "enable the fleet utilization ledger: every GPU-second classified by state with goodput attribution; adds /debug/fleet, the dashboard heatmap, and aegaeon_fleet_* metrics")
	marketOn := flag.Bool("market", false, "enable the spot-market fleet model: device classes, price traces, preemption-aware placement; adds /debug/market and aegaeon_market_* metrics (implies -fleet)")
	marketClasses := flag.String("market-classes", "", "comma-separated device classes cycled across the pool, e.g. H800,A10 (with -market; empty = homogeneous H800; small-VRAM classes need models that fit)")
	marketSpot := flag.Bool("market-spot", false, "activate spot pricing and reclaim risk (with -market)")
	marketNaive := flag.Bool("market-naive", false, "disable preemption-aware placement and KV evacuation: the spot-naive baseline arm (with -market)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	storeReplicas := flag.Int("store-replicas", 0, "replicate the cluster metadata store across N quorum replicas named ms0..msN-1 (0 or 1 = single in-process store); adds /debug/metastore replica state and aegaeon_metastore_* leader/term/commit metrics")
	noWhy := flag.Bool("no-decisions", false, "disable the decision-provenance journal and the /debug/decisions + /debug/why/{id} endpoints")
	flag.Parse()
	if *overloadOn {
		*noSLO = false // brownout steps off burn-rate alerts
	}

	prof, err := latency.ProfileByName(*gpu)
	if err != nil {
		log.Fatal(err)
	}
	var col *obs.Collector
	if !*noTrace || !*noSLO {
		col = obs.New(obs.Options{})
	}
	var mon *slomon.Monitor
	if !*noSLO {
		mon = slomon.New(slomon.Config{Objective: *objective, Source: col})
	}
	// One brownout controller shared between the scheduler (sheds, reaper,
	// decode shrink) and the HTTP edge (admission, metrics, /debug/overload),
	// so both act on the same degradation level.
	var ovl *overload.Controller
	if *overloadOn {
		ovl = overload.NewController(overload.Config{})
	}
	var pfx *prefixcache.Config
	if *prefixOn {
		pfx = &prefixcache.Config{Routing: true}
	}
	se := sim.NewEngine(*seed)
	// One ledger shared between the cluster (devices register with it) and
	// the gateway (/debug/fleet, metrics), so scrapes read the one source of
	// GPU-second truth.
	if *marketOn {
		*fleetOn = true // class economics join against the ledger
	}
	var fleet *fleetobs.Ledger
	if *fleetOn {
		fleet = fleetobs.New(se)
	}
	// One market shared between the cluster (devices register, reclaim and
	// throttle faults resolve) and the gateway (/debug/market, metrics).
	var mkt *market.Market
	if *marketOn {
		classes, err := market.ParseClasses(*marketClasses)
		if err != nil {
			log.Fatal(err)
		}
		mkt = market.New(se, fleet, market.Config{
			Classes: classes,
			Spot:    *marketSpot,
			Aware:   !*marketNaive,
			Seed:    *seed,
		})
	}
	// One journal shared between the cluster (routing, switch, eviction, and
	// terminal records on the event loop) and the gateway (edge admission
	// verdicts, /debug/why, metrics), so a request's chain spans both layers.
	var dec *decision.Journal
	if !*noWhy {
		dec = decision.New(decision.Options{})
	}
	cl, err := cluster.New(se, cluster.Config{
		Prof:          prof,
		SLO:           slo.Default(),
		Obs:           col,
		SLOMon:        mon,
		Overload:      ovl,
		Prefix:        pfx,
		Fleet:         fleet,
		Market:        mkt,
		Decisions:     dec,
		StoreReplicas: *storeReplicas,
		StoreSeed:     *seed,
		Deployments: []cluster.DeploymentConfig{{
			Name:       "live",
			TP:         *tp,
			NumPrefill: *prefill,
			NumDecode:  *decode,
			Models:     model.MarketMix(*numModels),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Bound the price trace: a live gateway rarely outruns a virtual day,
	// and an unbounded trace would keep the event queue from draining.
	mkt.Start(sim.Time(24 * time.Hour))
	drv := sim.NewDriver(se, *speedup)
	// The trace debug endpoints stay off under -no-trace even when the
	// collector exists purely to feed the SLO monitor's attribution join.
	gwCol := col
	if *noTrace {
		gwCol = nil
	}
	gwOpts := gateway.Options{
		Speedup:          *speedup,
		MaxQueuePerModel: *maxQueue,
		MaxInFlight:      *maxInflight,
		RatePerSec:       *rate,
		Burst:            *burst,
		Obs:              gwCol,
		SLOMon:           mon,
		Fleet:            fleet,
		Market:           mkt,
		Decisions:        dec,
		Pprof:            *pprofOn,
	}
	if *overloadOn {
		gwOpts.Overload = &gateway.OverloadOptions{Controller: ovl, RetryRatio: *retryRatio}
	}
	gw := gateway.New(drv, cl, gwOpts)
	gw.Start()

	srv := &http.Server{
		Addr:        *addr,
		Handler:     gw.Handler(),
		ReadTimeout: 30 * time.Second,
		// No write timeout: SSE streams are long-lived by design.
	}
	go func() {
		log.Printf("aegaeon-gateway listening on %s (%d models, speedup %gx)",
			*addr, *numModels, *speedup)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("draining (deadline %v)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(httpCtx)
	log.Printf("gateway stopped")
}
