package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"aegaeon"
	"aegaeon/internal/workload"
)

// parsePriorityMix parses "high,low" fractions (e.g. "0.2,0.3"). Empty means
// an all-normal trace.
func parsePriorityMix(s string) (high, low float64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf(`-priority-mix wants "high,low" fractions, got %q`, s)
	}
	if high, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, fmt.Errorf("-priority-mix high fraction: %v", err)
	}
	if low, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, fmt.Errorf("-priority-mix low fraction: %v", err)
	}
	if high < 0 || low < 0 || high+low > 1 {
		return 0, 0, fmt.Errorf("-priority-mix fractions must be non-negative and sum to <= 1, got %v+%v", high, low)
	}
	return high, low, nil
}

type benchOpts struct {
	gpu                 string
	tp, prefill, decode int
	nModels             int
	rps                 float64
	horizon             time.Duration
	dataset             aegaeon.Dataset
	datasetName         string
	slo                 aegaeon.SLO
	seed                int64
	factor              float64
	floor               float64
	highFrac, lowFrac   float64
	out                 string
}

// benchArm is one row of BENCH_overload.json.
type benchArm struct {
	Overload          bool               `json:"overload"`
	LoadFactor        float64            `json:"load_factor"`
	Requests          int                `json:"requests"`
	Completed         int                `json:"completed"`
	Attainment        float64            `json:"attainment"`
	HiPriAttainment   float64            `json:"hi_pri_attainment"`
	ByPriority        map[string]float64 `json:"attainment_by_priority,omitempty"`
	ThroughputTokPerS float64            `json:"throughput_tok_per_s"`
	GeneratedTokens   int                `json:"generated_tokens"`
	OverloadLevel     string             `json:"overload_level,omitempty"`
	Transitions       int                `json:"overload_transitions,omitempty"`
	Sheds             map[string]int     `json:"sheds,omitempty"`
}

// runOverloadBench serves three arms and writes BENCH_overload.json:
//
//   - capacity: the configured load at 1x, no overload control — the
//     throughput and attainment baseline the fleet can actually sustain.
//   - uncontrolled: the same fleet at factor x load, still no control —
//     every tier degrades together.
//   - controlled: the identical factor x trace with overload control on —
//     high-priority attainment must hold while low tiers absorb the sheds,
//     and goodput must stay within 10% of capacity.
//
// The two overloaded arms serve byte-identical traces (same requests, same
// priorities), so any difference between them is the control plane. With
// -overload-floor > 0 the comparison becomes an assertion and a failed
// invariant exits nonzero.
func runOverloadBench(o benchOpts) {
	if o.highFrac == 0 && o.lowFrac == 0 {
		// The bench is about tier differentiation; default to the canonical
		// 20/30 mix rather than silently measuring an all-normal trace.
		o.highFrac, o.lowFrac = 0.2, 0.3
	}

	build := func(ovl bool) *aegaeon.System {
		sys, err := aegaeon.New(aegaeon.Config{
			GPU: o.gpu, TP: o.tp, PrefillGPUs: o.prefill, DecodeGPUs: o.decode,
			NumModels: o.nModels, SLO: o.slo, Seed: o.seed, Overload: ovl,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	// Traces are generated outside the systems from an independent seed so
	// both overloaded arms serve the identical request sequence.
	genTrace := func(rps float64) []aegaeon.Request {
		gen := build(false)
		names := make([]string, 0, o.nModels)
		for _, m := range gen.Models() {
			names = append(names, m.Name)
		}
		rng := rand.New(rand.NewSource(o.seed + 100))
		trace := workload.PoissonTrace(rng, names, rps, o.horizon, o.dataset)
		workload.AssignPriorities(rng, trace, o.highFrac, o.lowFrac)
		return trace
	}
	baseTrace := genTrace(o.rps)
	hotTrace := genTrace(o.rps * o.factor)

	serve := func(label string, ovl bool, factor float64, trace []aegaeon.Request) benchArm {
		rep, err := build(ovl).Serve(trace)
		if err != nil {
			log.Fatalf("%s arm: %v", label, err)
		}
		arm := benchArm{
			Overload:        ovl,
			LoadFactor:      factor,
			Requests:        rep.Requests,
			Completed:       rep.Completed,
			Attainment:      rep.Attainment,
			GeneratedTokens: rep.GeneratedTokens,
			OverloadLevel:   rep.OverloadLevel,
			Sheds:           rep.Sheds,
			Transitions:     rep.OverloadTransitions,
			ByPriority:      rep.AttainmentByPriority,
		}
		if o.horizon > 0 {
			arm.ThroughputTokPerS = float64(rep.GeneratedTokens) / o.horizon.Seconds()
		}
		if att, ok := rep.AttainmentByPriority["high"]; ok {
			arm.HiPriAttainment = att
		} else {
			// Without overload control there are no per-tier trackers; the
			// fleet number stands in for every tier, including high.
			arm.HiPriAttainment = rep.Attainment
		}
		fmt.Printf("%-12s  %5.1fx load  %5d req  attainment %6.2f%%  hi-pri %6.2f%%  %8.1f tok/s",
			label, factor, arm.Requests, 100*arm.Attainment, 100*arm.HiPriAttainment, arm.ThroughputTokPerS)
		if ovl {
			total := 0
			for _, n := range arm.Sheds {
				total += n
			}
			fmt.Printf("  level %s, %d sheds", arm.OverloadLevel, total)
		}
		fmt.Println()
		return arm
	}

	fmt.Printf("overload bench    %d models on %d+%d %s, %.2f req/s/model base, %v horizon, %.0f/%.0f%% high/low tiers\n",
		o.nModels, o.prefill, o.decode, o.gpu, o.rps, o.horizon, 100*o.highFrac, 100*o.lowFrac)
	capacity := serve("capacity", false, 1, baseTrace)
	uncontrolled := serve("uncontrolled", false, o.factor, hotTrace)
	controlled := serve("controlled", true, o.factor, hotTrace)

	result := map[string]any{
		"bench":         "overload",
		"gpu":           o.gpu,
		"models":        o.nModels,
		"prefill_gpus":  o.prefill,
		"decode_gpus":   o.decode,
		"rps_per_model": o.rps,
		"horizon_s":     o.horizon.Seconds(),
		"dataset":       o.datasetName,
		"seed":          o.seed,
		"factor":        o.factor,
		"floor":         o.floor,
		"high_frac":     o.highFrac,
		"low_frac":      o.lowFrac,
		"capacity":      capacity,
		"uncontrolled":  uncontrolled,
		"controlled":    controlled,
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench json        %s\n", o.out)

	if o.floor <= 0 {
		return
	}
	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Printf("FAIL: "+format+"\n", args...)
		}
	}
	check(controlled.HiPriAttainment >= o.floor,
		"controlled hi-pri attainment %.2f%% below floor %.2f%%",
		100*controlled.HiPriAttainment, 100*o.floor)
	check(uncontrolled.HiPriAttainment < o.floor,
		"uncontrolled hi-pri attainment %.2f%% already above floor %.2f%% — the overload is not overloading",
		100*uncontrolled.HiPriAttainment, 100*o.floor)
	check(controlled.ThroughputTokPerS >= 0.9*capacity.ThroughputTokPerS,
		"controlled throughput %.1f tok/s below 90%% of capacity %.1f tok/s",
		controlled.ThroughputTokPerS, capacity.ThroughputTokPerS)
	if failed {
		os.Exit(1)
	}
	fmt.Printf("PASS: hi-pri %.2f%% >= %.2f%% under control (vs %.2f%% uncontrolled), throughput %.1f/%.1f tok/s\n",
		100*controlled.HiPriAttainment, 100*o.floor, 100*uncontrolled.HiPriAttainment,
		controlled.ThroughputTokPerS, capacity.ThroughputTokPerS)
}
