package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"aegaeon/internal/chaos"
)

// chaosRunJSON is one chaos run in the -chaos-json artifact.
type chaosRunJSON struct {
	Seed          int64    `json:"seed"`
	Spec          string   `json:"spec"`
	Requests      int      `json:"requests"`
	Completed     int      `json:"completed"`
	Failed        int      `json:"failed"`
	Injected      int      `json:"injected"`
	Failovers     int      `json:"failovers"`
	Attainment    float64  `json:"attainment"`
	LeaderChanges int      `json:"leader_changes"`
	Term          uint64   `json:"term"`
	CommitIndex   uint64   `json:"commit_index"`
	StoreOpsAcked int      `json:"store_ops_acked"`
	OpP50Ms       float64  `json:"op_p50_ms"`
	OpP99Ms       float64  `json:"op_p99_ms"`
	UnavailWins   int      `json:"unavail_windows"`
	UnavailS      float64  `json:"unavail_total_s"`
	Violations    []string `json:"violations"`
}

// chaosBenchJSON is the BENCH_controlplane.json artifact: every run plus the
// sweep rollup, asserted violation-free by CI.
type chaosBenchJSON struct {
	SchemaVersion int            `json:"schema_version"`
	StoreReplicas int            `json:"store_replicas"`
	HorizonS      float64        `json:"horizon_s"`
	Runs          []chaosRunJSON `json:"runs"`
	TotalRuns     int            `json:"total_runs"`
	TotalViolns   int            `json:"total_violations"`
	TotalFailover int            `json:"total_failovers"`
	WorstOpP99Ms  float64        `json:"worst_op_p99_ms"`
}

type chaosOpts struct {
	seed     int64
	horizon  time.Duration
	spec     string
	replicas int
	sweep    int
	out      string
}

// runChaos executes -chaos mode: one seeded chaos run (explicit -faults spec
// or a random schedule), or a -chaos-sweep of consecutive seeds, printing a
// per-run summary and writing the -chaos-json artifact. Exits non-zero if
// any run breaks an invariant — the recovery audit and, with -store-replicas
// > 1, the control-plane linearizability audit.
func runChaos(o chaosOpts) {
	bench := chaosBenchJSON{
		SchemaVersion: 1,
		StoreReplicas: o.replicas,
		HorizonS:      o.horizon.Seconds(),
	}
	runs := o.sweep
	if runs <= 0 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		seed := o.seed + int64(i)
		spec := o.spec
		if o.sweep > 0 {
			spec = "" // sweep runs draw random schedules per seed
		}
		res, err := chaos.Run(chaos.Config{
			Seed:          seed,
			Horizon:       o.horizon,
			Spec:          spec,
			StoreReplicas: o.replicas,
			RandomFaults:  5,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		run := chaosRunJSON{
			Seed:       seed,
			Spec:       res.Spec,
			Requests:   res.Requests,
			Completed:  res.Completed,
			Failed:     res.Failed,
			Injected:   res.Injected,
			Failovers:  res.Failovers,
			Attainment: res.Attainment,
			Violations: res.Violations,
		}
		if run.Violations == nil {
			run.Violations = []string{}
		}
		if res.Store != nil {
			run.LeaderChanges = res.Store.LeaderChanges
			run.Term = res.Store.Term
			run.CommitIndex = res.Store.CommitIndex
			run.StoreOpsAcked = res.StoreOpsAcked
			run.OpP50Ms = float64(res.StoreOpP50) / float64(time.Millisecond)
			run.OpP99Ms = float64(res.StoreOpP99) / float64(time.Millisecond)
			run.UnavailWins = res.UnavailWindows
			run.UnavailS = res.UnavailTotal.Seconds()
		}
		bench.Runs = append(bench.Runs, run)
		bench.TotalRuns++
		bench.TotalViolns += len(res.Violations)
		bench.TotalFailover += res.Failovers
		if run.OpP99Ms > bench.WorstOpP99Ms {
			bench.WorstOpP99Ms = run.OpP99Ms
		}

		fmt.Printf("chaos seed %-4d   %d/%d completed, %d failed, %d faults, %d failovers\n",
			seed, res.Completed, res.Requests, res.Failed, res.Injected, res.Failovers)
		fmt.Printf("chaos schedule    %s\n", res.Spec)
		if res.Store != nil {
			fmt.Printf("control plane     %d replicas, leader %s, term %d, %d leader changes, commit %d\n",
				len(res.Store.Replicas), res.Store.Leader, res.Store.Term,
				res.Store.LeaderChanges, res.Store.CommitIndex)
			fmt.Printf("store ops         %d acked (p50 %v, p99 %v), unavailability %d windows / %v\n",
				res.StoreOpsAcked, res.StoreOpP50.Round(time.Microsecond),
				res.StoreOpP99.Round(time.Microsecond), res.UnavailWindows,
				res.UnavailTotal.Round(time.Millisecond))
		}
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "chaos VIOLATION   seed %d: %s\n", seed, v)
		}
	}

	if o.out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chaos bench       %s (schema v%d, %d runs)\n", o.out, bench.SchemaVersion, bench.TotalRuns)
	}
	if bench.TotalViolns > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d invariant violations across %d runs\n", bench.TotalViolns, bench.TotalRuns)
		os.Exit(1)
	}
	fmt.Printf("chaos invariants  clean across %d run(s)\n", bench.TotalRuns)
}
