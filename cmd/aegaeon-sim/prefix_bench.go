package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"aegaeon"
	"aegaeon/internal/workload"
)

type prefixBenchOpts struct {
	gpu                 string
	tp, prefill, decode int
	nModels             int
	rate                float64
	horizon             time.Duration
	dataset             aegaeon.Dataset
	datasetName         string
	slo                 aegaeon.SLO
	seed                int64
	floor               float64
	out                 string
}

// prefixArm is one (workload, arm) row of BENCH_prefix.json.
type prefixArm struct {
	Arm         string  `json:"arm"` // nocache | cache | cache_routing
	Requests    int     `json:"requests"`
	Completed   int     `json:"completed"`
	Attainment  float64 `json:"attainment"`
	MeanTTFTMS  float64 `json:"mean_ttft_ms"`
	TTFTP99MS   float64 `json:"ttft_p99_ms"`
	HitRatio    float64 `json:"hit_ratio,omitempty"`
	SavedRatio  float64 `json:"saved_ratio,omitempty"`
	TokensSaved uint64  `json:"tokens_saved,omitempty"`
	Promotions  uint64  `json:"promotions,omitempty"`
}

// runPrefixBench serves each prefix-heavy workload (multi-turn chat, agentic
// tool loops, shared-system-prompt tenants) on three arms over byte-identical
// traces:
//
//   - nocache: the prefix cache off — every turn recomputes its full context.
//   - cache: the global prefix cache on, load-balanced routing unchanged.
//   - cache_routing: the cache plus cache-aware prefill routing, steering
//     turns toward the instance holding their chain's device copies.
//
// With -prefix-floor > 0 the comparison becomes an assertion: the
// cache_routing arm must save at least the floor fraction of prefill tokens
// on the sharedprompt trace, strictly dominate nocache on tokens saved and
// mean TTFT on every workload, and not regress attainment.
func runPrefixBench(o prefixBenchOpts) {
	type wl struct {
		name    string
		kind    aegaeon.WorkloadKind
		rate    float64 // per-model; sessions (multiturn), tasks (agentic), req (sharedprompt)
		sysToks int
	}
	workloads := []wl{
		{name: "multiturn", kind: aegaeon.MultiTurn, rate: o.rate, sysToks: 128},
		{name: "agentic", kind: aegaeon.Agentic, rate: o.rate * 0.6, sysToks: 512},
		{name: "sharedprompt", kind: aegaeon.SharedPrompt, rate: o.rate * 2, sysToks: 2048},
	}

	build := func(cache, routing bool) *aegaeon.System {
		sys, err := aegaeon.New(aegaeon.Config{
			GPU: o.gpu, TP: o.tp, PrefillGPUs: o.prefill, DecodeGPUs: o.decode,
			NumModels: o.nModels, SLO: o.slo, Seed: o.seed,
			PrefixCache: cache, PrefixRouting: routing,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	// Traces are generated outside the systems from an independent seed so
	// all three arms of a workload serve the identical request sequence.
	genTrace := func(w wl) []aegaeon.Request {
		gen := build(false, false)
		names := make([]string, 0, o.nModels)
		for _, m := range gen.Models() {
			names = append(names, m.Name)
		}
		rng := rand.New(rand.NewSource(o.seed + 100))
		switch w.kind {
		case aegaeon.MultiTurn:
			return workload.MultiTurnTrace(rng, names, w.rate, o.horizon, o.dataset,
				workload.MultiTurnConfig{SystemPromptTokens: w.sysToks})
		case aegaeon.Agentic:
			return workload.AgenticTrace(rng, names, w.rate, o.horizon, o.dataset,
				workload.AgenticConfig{SystemPromptTokens: w.sysToks})
		default:
			return workload.SharedPrefixTrace(rng, names, w.rate, o.horizon, w.sysToks, o.dataset)
		}
	}

	serve := func(w wl, arm string, cache, routing bool, trace []aegaeon.Request) prefixArm {
		rep, err := build(cache, routing).Serve(trace)
		if err != nil {
			log.Fatalf("%s/%s arm: %v", w.name, arm, err)
		}
		row := prefixArm{
			Arm:        arm,
			Requests:   rep.Requests,
			Completed:  rep.Completed,
			Attainment: rep.Attainment,
			MeanTTFTMS: float64(rep.MeanTTFT) / float64(time.Millisecond),
			TTFTP99MS:  float64(rep.TTFTP99) / float64(time.Millisecond),
		}
		if rep.Prefix != nil {
			row.HitRatio = rep.Prefix.HitRatio()
			row.SavedRatio = rep.Prefix.SavedRatio()
			row.TokensSaved = rep.Prefix.TokensSaved
			row.Promotions = rep.Prefix.Promotions
		}
		fmt.Printf("%-12s  %-13s  %5d req  attainment %6.2f%%  mean TTFT %8.1fms  hit %5.1f%%  saved %5.1f%%\n",
			w.name, arm, row.Requests, 100*row.Attainment, row.MeanTTFTMS,
			100*row.HitRatio, 100*row.SavedRatio)
		return row
	}

	fmt.Printf("prefix bench      %d models on %d+%d %s, %.3f sess/s/model, %v horizon\n",
		o.nModels, o.prefill, o.decode, o.gpu, o.rate, o.horizon)
	perWorkload := map[string]map[string]prefixArm{}
	for _, w := range workloads {
		trace := genTrace(w)
		perWorkload[w.name] = map[string]prefixArm{
			"nocache":       serve(w, "nocache", false, false, trace),
			"cache":         serve(w, "cache", true, false, trace),
			"cache_routing": serve(w, "cache_routing", true, true, trace),
		}
	}

	result := map[string]any{
		"bench":        "prefix",
		"gpu":          o.gpu,
		"models":       o.nModels,
		"prefill_gpus": o.prefill,
		"decode_gpus":  o.decode,
		"rate":         o.rate,
		"horizon_s":    o.horizon.Seconds(),
		"dataset":      o.datasetName,
		"seed":         o.seed,
		"floor":        o.floor,
		"workloads":    perWorkload,
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench json        %s\n", o.out)

	if o.floor <= 0 {
		return
	}
	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Printf("FAIL: "+format+"\n", args...)
		}
	}
	for _, w := range workloads {
		arms := perWorkload[w.name]
		no, cr := arms["nocache"], arms["cache_routing"]
		check(cr.TokensSaved > 0,
			"%s: cache_routing saved no prefill tokens", w.name)
		check(cr.MeanTTFTMS < no.MeanTTFTMS,
			"%s: cache_routing mean TTFT %.1fms not below nocache %.1fms",
			w.name, cr.MeanTTFTMS, no.MeanTTFTMS)
		check(cr.Attainment >= no.Attainment,
			"%s: cache_routing attainment %.2f%% regressed below nocache %.2f%%",
			w.name, 100*cr.Attainment, 100*no.Attainment)
	}
	sp := perWorkload["sharedprompt"]["cache_routing"]
	check(sp.SavedRatio >= o.floor,
		"sharedprompt cache_routing saved %.1f%% of prefill tokens, floor is %.1f%%",
		100*sp.SavedRatio, 100*o.floor)
	if failed {
		os.Exit(1)
	}
	fmt.Printf("PASS: sharedprompt saved %.1f%% >= %.1f%%, cache_routing dominates nocache on TTFT and savings on all %d workloads\n",
		100*sp.SavedRatio, 100*o.floor, len(workloads))
}
