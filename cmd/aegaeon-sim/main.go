// Command aegaeon-sim runs one Aegaeon (or baseline) serving simulation
// from flags and prints the SLO report.
//
// Examples:
//
//	aegaeon-sim -models 40 -rps 0.1 -horizon 5m
//	aegaeon-sim -models 40 -rps 0.1 -system serverlessllm
//	aegaeon-sim -gpu A10 -models 8 -prefill 2 -decode 2 -tbt-scale 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"aegaeon"
)

func main() {
	var (
		gpu       = flag.String("gpu", "H800", "GPU profile: H800, A10, H20")
		tp        = flag.Int("tp", 1, "tensor parallel degree")
		prefill   = flag.Int("prefill", 6, "prefill instances")
		decode    = flag.Int("decode", 10, "decoding instances")
		nModels   = flag.Int("models", 40, "number of market models")
		rps       = flag.Float64("rps", 0.1, "per-model arrival rate (req/s)")
		horizon   = flag.Duration("horizon", 5*time.Minute, "trace length")
		dataset   = flag.String("dataset", "sharegpt", "sharegpt, sharegpt-ix2, sharegpt-ox2")
		system    = flag.String("system", "aegaeon", "aegaeon, serverlessllm, serverlessllm+, muxserve")
		seed      = flag.Int64("seed", 1, "random seed")
		sloScale  = flag.Float64("slo-scale", 1, "scale both TTFT and TBT targets")
		ttftScale = flag.Float64("ttft-scale", 1, "scale the TTFT target")
		tbtScale  = flag.Float64("tbt-scale", 1, "scale the TBT target")
		unopt     = flag.Bool("unoptimized", false, "disable the §5 auto-scaling optimizations")
		perfetto  = flag.String("perfetto", "", "write a Perfetto-loadable trace JSON to this file (aegaeon system only)")
		faults    = flag.String("faults", "", `fault schedule: "kind@at[+dur][*factor][:target]", comma-separated — e.g. "crash@40s:decode0,fetchslow@60s+30s*4" (aegaeon system only)`)
	)
	flag.Parse()
	if *perfetto != "" && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-perfetto requires -system aegaeon (baselines are not instrumented)")
		os.Exit(2)
	}
	if *faults != "" && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-faults requires -system aegaeon (baselines have no fault model)")
		os.Exit(2)
	}

	var ds aegaeon.Dataset
	switch *dataset {
	case "sharegpt":
		ds = aegaeon.ShareGPT()
	case "sharegpt-ix2":
		ds = aegaeon.ShareGPTIx2()
	case "sharegpt-ox2":
		ds = aegaeon.ShareGPTOx2()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	slo := aegaeon.DefaultSLO().Scale(*sloScale).ScaleTTFT(*ttftScale).ScaleTBT(*tbtScale)
	sys, err := aegaeon.New(aegaeon.Config{
		GPU:                  *gpu,
		TP:                   *tp,
		PrefillGPUs:          *prefill,
		DecodeGPUs:           *decode,
		NumModels:            *nModels,
		SLO:                  slo,
		Seed:                 *seed,
		DisableOptimizations: *unopt,
		Tracing:              *perfetto != "",
		Faults:               *faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{RatePerModel: *rps, Horizon: *horizon, Dataset: ds})

	var rep aegaeon.Report
	switch *system {
	case "aegaeon":
		rep, err = sys.Serve(trace)
	case "serverlessllm":
		rep, err = sys.ServeBaseline(aegaeon.ServerlessLLM, trace)
	case "serverlessllm+":
		rep, err = sys.ServeBaseline(aegaeon.ServerlessLLMPlus, trace)
	case "muxserve":
		rep, err = sys.ServeBaseline(aegaeon.MuxServe, trace)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system            %s on %d+%d %s GPUs (TP=%d)\n", *system, *prefill, *decode, *gpu, *tp)
	fmt.Printf("workload          %d models x %.2f req/s, %s, %v (%d requests)\n",
		*nModels, *rps, *dataset, *horizon, rep.Requests)
	fmt.Printf("SLO               %v (x%.2f overall)\n", slo, *sloScale)
	fmt.Printf("completed         %d/%d\n", rep.Completed, rep.Requests)
	fmt.Printf("token attainment  %.2f%%\n", 100*rep.Attainment)
	fmt.Printf("TTFT attainment   %.2f%% (mean %v)\n", 100*rep.TTFTAttainment, rep.MeanTTFT.Round(time.Millisecond))
	if *system == "aegaeon" {
		fmt.Printf("model switches    %d (p50 %v, p99 %v)\n",
			rep.Switches, rep.SwitchP50.Round(time.Millisecond), rep.SwitchP99.Round(time.Millisecond))
		fmt.Printf("latency breakdown %v\n", sys.Breakdown())
	}
	if *faults != "" {
		fs := rep.Faults
		fmt.Printf("faults injected   %d (%s)\n", rep.FaultsInjected, *faults)
		fmt.Printf("crash recovery    %d crashed, %d resumed from CPU KV, %d recomputed, %d rejected\n",
			fs.Crashes, fs.Resumed, fs.Recomputed, fs.Rejected)
		fmt.Printf("retries           fetch %d (%d exhausted), transfer %d, store %d\n",
			fs.FetchRetries, fs.FetchExhausted, fs.TransferRetries, fs.StoreRetries)
	}
	fmt.Printf("virtual duration  %v\n", rep.VirtualDuration.Round(time.Second))

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.WritePerfetto(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perfetto trace    %s (open at https://ui.perfetto.dev)\n", *perfetto)
	}
}
