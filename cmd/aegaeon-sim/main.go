// Command aegaeon-sim runs one Aegaeon (or baseline) serving simulation
// from flags and prints the SLO report.
//
// Examples:
//
//	aegaeon-sim -models 40 -rps 0.1 -horizon 5m
//	aegaeon-sim -models 40 -rps 0.1 -system serverlessllm
//	aegaeon-sim -gpu A10 -models 8 -prefill 2 -decode 2 -tbt-scale 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"aegaeon"
	"aegaeon/internal/decision"
	"aegaeon/internal/fleetobs"
	"aegaeon/internal/market"
	"aegaeon/internal/slomon"
)

// printSLOReport renders the live monitor's final snapshot: fleet-wide
// windowed attainment and burn rates, the alert state, quantiles, and the
// missed-token cause breakdown.
func printSLOReport(s *slomon.Snapshot) {
	fmt.Printf("--- live SLO monitor (objective %.2f%%) ---\n", 100*s.Objective)
	for _, w := range s.Fleet.Windowed {
		fmt.Printf("slo %-4s window   %.2f%% attainment (burn %.2f, %.1f tok/s goodput, %d met / %d missed)\n",
			w.Window, 100*w.Attainment, w.BurnRate, w.GoodputTPS, w.Met, w.Missed)
	}
	fmt.Printf("slo alert         %s (budget remaining %.1f%%, %d transitions)\n",
		s.Fleet.Alert.State, 100*s.Fleet.ErrorBudgetRemaining, len(s.Fleet.Alert.Transitions))
	if s.Fleet.TTFT.Count > 0 {
		fmt.Printf("slo windowed TTFT p50 %v p99 %v\n",
			secs(s.Fleet.TTFT.P50S), secs(s.Fleet.TTFT.P99S))
	}
	if s.Fleet.TBT.Count > 0 {
		fmt.Printf("slo windowed TBT  p50 %v p99 %v\n",
			secs(s.Fleet.TBT.P50S), secs(s.Fleet.TBT.P99S))
	}
	type kv struct {
		cause string
		n     uint64
	}
	var causes []kv
	for c, n := range s.Fleet.Causes {
		if n > 0 {
			causes = append(causes, kv{c, n})
		}
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].n != causes[j].n {
			return causes[i].n > causes[j].n
		}
		return causes[i].cause < causes[j].cause
	})
	for _, c := range causes {
		fmt.Printf("slo miss cause    %-18s %d\n", c.cause, c.n)
	}
	paged := 0
	for _, m := range s.Models {
		if m.Alert.State != "ok" {
			paged++
		}
	}
	fmt.Printf("slo models        %d tracked, %d in warn/page\n", len(s.Models), paged)
}

func secs(v float64) time.Duration {
	return time.Duration(v * float64(time.Second)).Round(time.Millisecond)
}

// printFleetReport renders the fleet utilization ledger's final snapshot:
// the fleet rollup, each device's state decomposition, and per-model
// goodput economics. Every printed GPU-second is accounted — the state
// columns sum to wall time per device.
func printFleetReport(s *fleetobs.Snapshot) {
	fmt.Printf("--- fleet utilization ledger (%d devices, %.1f GPU-s) ---\n",
		s.Fleet.Devices, s.Fleet.GPUSeconds)
	fmt.Printf("fleet             busy %.1f%%, switch overhead %.2f%%, idle %.1fs, faulted %.1fs\n",
		100*s.Fleet.BusyFraction, 100*s.Fleet.SwitchRatio, s.Fleet.IdleS, s.Fleet.FaultedS)
	fmt.Printf("fleet economics   %d goodput tokens (%.1f tok/busy-GPU-s), %.4f GPU-h, $%.4f\n",
		s.Fleet.Tokens, s.Fleet.TokensPerBusyGPUSecond, s.Fleet.GPUHours, s.Fleet.CostDollars)
	for _, d := range s.Devices {
		status := ""
		if d.Faulted {
			status = " [faulted]"
		}
		fmt.Printf("device %-10s busy %5.1f%% switch %5.2f%% (prefill %.1fs decode %.1fs load %.1fs kv %.1fs)%s\n",
			d.Device, 100*d.BusyFraction, 100*d.SwitchRatio,
			d.StatesS["prefill"], d.StatesS["decode"],
			d.StatesS["weight-load"], d.StatesS["kv-transfer"], status)
	}
	for _, m := range s.Models {
		fmt.Printf("model  %-16s %8d tokens, %6.1f compute-s (%.1f%% occupancy, %.1f tok/GPU-s)\n",
			m.Model, m.Tokens, m.ComputeS, 100*m.OccupancyShare, m.TokensPerGPUSecond)
	}
	if len(s.ConservationErrors) > 0 {
		fmt.Printf("fleet CONSERVATION VIOLATED: %d errors, first: %s\n",
			len(s.ConservationErrors), s.ConservationErrors[0])
	}
}

// printMarketReport renders the spot-market snapshot: the per-device market
// state, the preemption audit trail with evacuated-vs-lost KV accounting, and
// per-class unit economics joined against the fleet ledger.
func printMarketReport(s *market.Snapshot) {
	mode := "reliable (flat on-demand rates)"
	if s.Spot {
		mode = "spot-aware"
		if !s.Aware {
			mode = "spot-naive"
		}
	}
	fmt.Printf("--- spot market (%s, %d devices, %d price ticks) ---\n",
		mode, len(s.Devices), s.Stats.PriceTicks)
	fmt.Printf("market preemption %d notices, %d revocations, %d deadlines missed, %d throttles, %d disqualifications\n",
		s.Stats.Preemptions, s.Stats.Revocations, s.Stats.DeadlinesMissed,
		s.Stats.Throttles, s.Stats.Disqualifications)
	fmt.Printf("market KV bytes   %.1fMB evacuated, %.1fMB lost, %.1fMB prefix re-homed\n",
		float64(s.Stats.EvacuatedKVBytes)/(1<<20), float64(s.Stats.LostKVBytes)/(1<<20),
		float64(s.Stats.RehomedPrefixBytes)/(1<<20))
	for _, d := range s.Devices {
		status := ""
		if !d.Eligible {
			status = " [disqualified]"
		}
		if d.UnderNotice {
			status += " [under notice]"
		}
		if d.Revoked {
			status = " [revoked]"
		}
		fmt.Printf("market %-10s %-8s $%5.2f/h  capability %.2f%s\n",
			d.Device, d.Class, d.RateDollarsPerHour, d.CapabilityScore, status)
	}
	for _, c := range s.Classes {
		fmt.Printf("class  %-8s %d devices, mean $%5.2f/h, $%.4f spent, %d tokens, $%.4f/1k tokens, %d preemptions\n",
			c.Class, c.Devices, c.MeanRate, c.CostDollars, c.Tokens,
			c.DollarsPer1KTokens, c.Preemptions)
	}
}

// printWhyReport renders the decision journal's summary: how many decisions
// were journaled, how many request chains are retained, and the kind/outcome
// counters — the at-a-glance answer to "what did the schedulers decide, and
// how often". The full evidence (inputs, candidate scores, chains) goes to
// -why-json.
func printWhyReport(j *decision.Journal) {
	fmt.Printf("--- decision journal (%d decisions, %d request chains) ---\n",
		j.Total(), j.TrackedRequests())
	for _, c := range j.Counts() {
		fmt.Printf("decision %-20s %-22s %d\n", c.Kind, c.Outcome, c.N)
	}
}

// kernelMetrics are the simulation kernel's self-metrics for one run — the
// substrate's own throughput, independent of what the simulated fleet did.
type kernelMetrics struct {
	SchemaVersion   int     `json:"schema_version"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	Requests        int     `json:"requests"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	TokensGenerated int     `json:"tokens_generated"`
	WallSeconds     float64 `json:"wall_seconds"`
	VirtualSeconds  float64 `json:"virtual_seconds"`
	SpeedupFactor   float64 `json:"speedup_factor"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
}

// writeKernelMetrics measures and writes the kernel self-metrics JSON.
func writeKernelMetrics(path string, sys *aegaeon.System, rep *aegaeon.Report, wall time.Duration) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	wallS := wall.Seconds()
	km := kernelMetrics{
		SchemaVersion:   1,
		Events:          sys.EventsProcessed(),
		Requests:        rep.Requests,
		TokensGenerated: rep.GeneratedTokens,
		WallSeconds:     wallS,
		VirtualSeconds:  rep.VirtualDuration.Seconds(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
	}
	if wallS > 0 {
		km.EventsPerSec = float64(km.Events) / wallS
		km.RequestsPerSec = float64(km.Requests) / wallS
		km.SpeedupFactor = km.VirtualSeconds / wallS
	}
	data, err := json.MarshalIndent(km, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		gpu        = flag.String("gpu", "H800", "GPU profile: H800, A10, H20")
		tp         = flag.Int("tp", 1, "tensor parallel degree")
		prefill    = flag.Int("prefill", 6, "prefill instances")
		decode     = flag.Int("decode", 10, "decoding instances")
		nModels    = flag.Int("models", 40, "number of market models")
		rps        = flag.Float64("rps", 0.1, "per-model arrival rate (req/s)")
		horizon    = flag.Duration("horizon", 5*time.Minute, "trace length")
		dataset    = flag.String("dataset", "sharegpt", "sharegpt, sharegpt-ix2, sharegpt-ox2")
		system     = flag.String("system", "aegaeon", "aegaeon, serverlessllm, serverlessllm+, muxserve")
		seed       = flag.Int64("seed", 1, "random seed")
		sloScale   = flag.Float64("slo-scale", 1, "scale both TTFT and TBT targets")
		ttftScale  = flag.Float64("ttft-scale", 1, "scale the TTFT target")
		tbtScale   = flag.Float64("tbt-scale", 1, "scale the TBT target")
		unopt      = flag.Bool("unoptimized", false, "disable the §5 auto-scaling optimizations")
		perfetto   = flag.String("perfetto", "", "write a Perfetto-loadable trace JSON to this file (aegaeon system only)")
		faults     = flag.String("faults", "", `fault schedule: "kind@at[+dur][*factor][:target]", comma-separated — e.g. "crash@40s:decode0,fetchslow@60s+30s*4" (aegaeon system only)`)
		sloReport  = flag.Bool("slo-report", false, "run the live SLO monitor and print windowed attainment, alert state, and missed-token causes (aegaeon system only)")
		sloJSON    = flag.String("slo-json", "", "write the final SLO monitor snapshot as JSON to this file (implies -slo-report)")
		overloadOn = flag.Bool("overload", false, "enable overload control: SLO-coupled brownout, deadline-aware shedding, priority-aware prefill (aegaeon system only)")
		prioMix    = flag.String("priority-mix", "", `service-tier mix as "high,low" fractions of the trace, e.g. "0.2,0.3" (rest normal)`)
		ovlBench   = flag.String("overload-bench", "", "run the three-arm overload benchmark (capacity / uncontrolled / controlled at -overload-factor x) and write BENCH JSON here")
		ovlFactor  = flag.Float64("overload-factor", 3, "load multiplier for the overloaded arms of -overload-bench")
		ovlFloor   = flag.Float64("overload-floor", 0, "assert controlled high-priority attainment >= floor, uncontrolled < floor, and controlled throughput >= 90% of capacity (0 = report only)")
		prefixOn   = flag.Bool("prefix", false, "enable the global prefix cache with cache-aware routing (aegaeon system only)")
		wlKind     = flag.String("workload", "poisson", "arrival pattern: poisson, multiturn, agentic, sharedprompt (-rps is sessions/tasks per s for the session kinds)")
		sysToks    = flag.Int("system-prompt-tokens", 0, "shared system prompt length for session workloads (0 = per-kind default)")
		pfxBench   = flag.String("prefix-bench", "", "run the three-arm prefix benchmark (nocache / cache / cache_routing over multiturn, agentic, sharedprompt) and write BENCH JSON here")
		pfxFloor   = flag.Float64("prefix-floor", 0, "assert the cache_routing arm saves >= floor of sharedprompt prefill tokens and strictly dominates nocache on TTFT and savings (0 = report only)")
		fleetOn    = flag.Bool("fleet-report", false, "run the fleet utilization ledger and print the per-device GPU-second accounting; exits non-zero if the conservation invariant breaks (aegaeon system only)")
		fleetJSON  = flag.String("fleet-json", "", "write the final fleet snapshot as JSON to this file (implies -fleet-report)")
		fleetCSV   = flag.String("fleet-csv", "", "write the per-device fleet accounting as CSV to this file, comparable against results/figure_8_10.csv exposed switch costs (implies -fleet-report)")
		kernelJSON = flag.String("kernel-json", "", "write simulation-kernel self-metrics (events/sec, requests/sec, heap allocations) as JSON to this file (aegaeon system only)")
		marketOn   = flag.Bool("market", false, "enable the spot-market fleet model: device classes, price traces, preemption risk (implies -fleet-report; aegaeon system only)")
		mktClasses = flag.String("market-classes", "", `comma-separated device classes cycled across the pool, e.g. "H800,A10,RTX4090" (with -market; empty = homogeneous H800; small-VRAM classes need models that fit)`)
		mktSpot    = flag.Bool("market-spot", false, "activate spot pricing and reclaim risk (with -market)")
		mktNaive   = flag.Bool("market-naive", false, "disable preemption-aware placement and KV evacuation: the spot-naive baseline (with -market)")
		mktBench   = flag.String("market-bench", "", "run the three-arm spot-market benchmark (reliable / spot_naive / spot_aware on one trace) and write BENCH JSON here")
		mktAssert  = flag.Bool("market-assert", false, "assert the -market-bench floors: spot_aware loses >=50% fewer KV bytes than spot_naive, no attainment or $-per-1k regression")
		smallMix   = flag.Bool("small-models", false, "serve the 6-8B small-model mix instead of the default 6-15B market mix (fits 24 GB market classes like A10/RTX4090)")
		whyOn      = flag.Bool("why", false, "enable the decision-provenance journal and print the why-trace summary (aegaeon system only)")
		whyJSON    = flag.String("why-json", "", "write the decision journal export as JSON to this file, checkable with aegaeon-trace -mode why (implies -why)")
		chaosOn    = flag.Bool("chaos", false, "run the chaos harness instead of the plain simulation: inject -faults (or a random schedule), then audit recovery and, with -store-replicas > 1, control-plane linearizability; exits non-zero on any violation")
		storeReps  = flag.Int("store-replicas", 0, "replicate the cluster metadata store across N quorum replicas named ms0..msN-1 (with -chaos; 0 or 1 = single store)")
		chaosSweep = flag.Int("chaos-sweep", 0, "run N chaos seeds starting at -seed, each with a fresh random fault schedule (with -chaos; overrides -faults)")
		chaosJSON  = flag.String("chaos-json", "", "write the chaos bench artifact (per-run counters, store op latency p50/p99, unavailability windows, violations) as JSON to this file (with -chaos)")
	)
	flag.Parse()
	if *sloJSON != "" {
		*sloReport = true
	}
	if *fleetJSON != "" || *fleetCSV != "" {
		*fleetOn = true
	}
	if *marketOn {
		*fleetOn = true // class economics join against the fleet ledger
	}
	if *whyJSON != "" {
		*whyOn = true
	}
	if *perfetto != "" && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-perfetto requires -system aegaeon (baselines are not instrumented)")
		os.Exit(2)
	}
	if *faults != "" && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-faults requires -system aegaeon (baselines have no fault model)")
		os.Exit(2)
	}
	if *sloReport && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-slo-report requires -system aegaeon (baselines feed no live monitor)")
		os.Exit(2)
	}
	if *overloadOn && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-overload requires -system aegaeon (baselines have no overload control)")
		os.Exit(2)
	}
	if *prefixOn && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-prefix requires -system aegaeon (baselines have no prefix cache)")
		os.Exit(2)
	}
	if *fleetOn && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-fleet-report requires -system aegaeon (baselines are not instrumented)")
		os.Exit(2)
	}
	if *kernelJSON != "" && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-kernel-json requires -system aegaeon (baselines run a private kernel)")
		os.Exit(2)
	}
	if (*marketOn || *mktBench != "") && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-market requires -system aegaeon (baselines have no market model)")
		os.Exit(2)
	}
	if *whyOn && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-why requires -system aegaeon (baselines journal no decisions)")
		os.Exit(2)
	}
	if *chaosOn && *system != "aegaeon" {
		fmt.Fprintln(os.Stderr, "-chaos requires -system aegaeon (baselines have no fault model)")
		os.Exit(2)
	}
	if (*storeReps > 1 || *chaosSweep > 0 || *chaosJSON != "") && !*chaosOn {
		fmt.Fprintln(os.Stderr, "-store-replicas/-chaos-sweep/-chaos-json require -chaos")
		os.Exit(2)
	}
	var wk aegaeon.WorkloadKind
	switch *wlKind {
	case "poisson":
		wk = aegaeon.Poisson
	case "multiturn":
		wk = aegaeon.MultiTurn
	case "agentic":
		wk = aegaeon.Agentic
	case "sharedprompt":
		wk = aegaeon.SharedPrompt
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlKind)
		os.Exit(2)
	}
	highFrac, lowFrac, err := parsePriorityMix(*prioMix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var ds aegaeon.Dataset
	switch *dataset {
	case "sharegpt":
		ds = aegaeon.ShareGPT()
	case "sharegpt-ix2":
		ds = aegaeon.ShareGPTIx2()
	case "sharegpt-ox2":
		ds = aegaeon.ShareGPTOx2()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	slo := aegaeon.DefaultSLO().Scale(*sloScale).ScaleTTFT(*ttftScale).ScaleTBT(*tbtScale)

	if *chaosOn {
		runChaos(chaosOpts{
			seed: *seed, horizon: *horizon, spec: *faults,
			replicas: *storeReps, sweep: *chaosSweep, out: *chaosJSON,
		})
		return
	}

	if *pfxBench != "" {
		runPrefixBench(prefixBenchOpts{
			gpu: *gpu, tp: *tp, prefill: *prefill, decode: *decode,
			nModels: *nModels, rate: *rps, horizon: *horizon, dataset: ds,
			datasetName: *dataset, slo: slo, seed: *seed,
			floor: *pfxFloor, out: *pfxBench,
		})
		return
	}

	if *mktBench != "" {
		runMarketBench(marketBenchOpts{
			gpu: *gpu, tp: *tp, prefill: *prefill, decode: *decode,
			nModels: *nModels, rps: *rps, horizon: *horizon, dataset: ds,
			datasetName: *dataset, slo: slo, seed: *seed,
			classes: *mktClasses, assert: *mktAssert, out: *mktBench,
		})
		return
	}

	if *ovlBench != "" {
		runOverloadBench(benchOpts{
			gpu: *gpu, tp: *tp, prefill: *prefill, decode: *decode,
			nModels: *nModels, rps: *rps, horizon: *horizon, dataset: ds,
			datasetName: *dataset, slo: slo, seed: *seed,
			factor: *ovlFactor, floor: *ovlFloor,
			highFrac: highFrac, lowFrac: lowFrac, out: *ovlBench,
		})
		return
	}

	var modelMix []*aegaeon.Model
	if *smallMix {
		modelMix = aegaeon.SmallModels(*nModels)
	}
	sys, err := aegaeon.New(aegaeon.Config{
		Models:               modelMix,
		GPU:                  *gpu,
		TP:                   *tp,
		PrefillGPUs:          *prefill,
		DecodeGPUs:           *decode,
		NumModels:            *nModels,
		SLO:                  slo,
		Seed:                 *seed,
		DisableOptimizations: *unopt,
		Tracing:              *perfetto != "",
		SLOMonitor:           *sloReport,
		Overload:             *overloadOn,
		PrefixRouting:        *prefixOn,
		FleetAccounting:      *fleetOn,
		Market:               *marketOn,
		MarketClasses:        *mktClasses,
		MarketSpot:           *mktSpot,
		MarketNaive:          *mktNaive,
		Faults:               *faults,
		Decisions:            *whyOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := sys.GenerateTrace(aegaeon.TraceSpec{
		RatePerModel: *rps, Horizon: *horizon, Dataset: ds,
		Workload: wk, SystemPromptTokens: *sysToks,
	})
	if highFrac > 0 || lowFrac > 0 {
		sys.AssignPriorities(trace, highFrac, lowFrac)
	}

	wallStart := time.Now()
	var rep aegaeon.Report
	switch *system {
	case "aegaeon":
		rep, err = sys.Serve(trace)
	case "serverlessllm":
		rep, err = sys.ServeBaseline(aegaeon.ServerlessLLM, trace)
	case "serverlessllm+":
		rep, err = sys.ServeBaseline(aegaeon.ServerlessLLMPlus, trace)
	case "muxserve":
		rep, err = sys.ServeBaseline(aegaeon.MuxServe, trace)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	wallElapsed := time.Since(wallStart)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system            %s on %d+%d %s GPUs (TP=%d)\n", *system, *prefill, *decode, *gpu, *tp)
	fmt.Printf("workload          %d models x %.2f req/s, %s, %v (%d requests)\n",
		*nModels, *rps, *dataset, *horizon, rep.Requests)
	fmt.Printf("SLO               %v (x%.2f overall)\n", slo, *sloScale)
	fmt.Printf("completed         %d/%d\n", rep.Completed, rep.Requests)
	fmt.Printf("token attainment  %.2f%%\n", 100*rep.Attainment)
	fmt.Printf("TTFT attainment   %.2f%% (mean %v)\n", 100*rep.TTFTAttainment, rep.MeanTTFT.Round(time.Millisecond))
	if *system == "aegaeon" {
		fmt.Printf("model switches    %d (p50 %v, p99 %v)\n",
			rep.Switches, rep.SwitchP50.Round(time.Millisecond), rep.SwitchP99.Round(time.Millisecond))
		fmt.Printf("latency breakdown %v\n", sys.Breakdown())
	}
	if *faults != "" {
		fs := rep.Faults
		fmt.Printf("faults injected   %d (%s)\n", rep.FaultsInjected, *faults)
		fmt.Printf("crash recovery    %d crashed, %d resumed from CPU KV, %d recomputed, %d rejected\n",
			fs.Crashes, fs.Resumed, fs.Recomputed, fs.Rejected)
		fmt.Printf("retries           fetch %d (%d exhausted), transfer %d, store %d\n",
			fs.FetchRetries, fs.FetchExhausted, fs.TransferRetries, fs.StoreRetries)
	}
	if rep.Prefix != nil {
		fmt.Printf("prefix cache      %.1f%% hit ratio, %d tokens saved (%.1f%% of prefill), %d promotions\n",
			100*rep.Prefix.HitRatio(), rep.Prefix.TokensSaved,
			100*rep.Prefix.SavedRatio(), rep.Prefix.Promotions)
	}
	if *overloadOn {
		fmt.Printf("overload level    %s (%d transitions)\n", rep.OverloadLevel, rep.OverloadTransitions)
		if att := rep.AttainmentByPriority; att != nil {
			fmt.Printf("attainment tiers  high %.2f%%, normal %.2f%%, low %.2f%%\n",
				100*att["high"], 100*att["normal"], 100*att["low"])
		}
		total := 0
		for _, n := range rep.Sheds {
			total += n
		}
		fmt.Printf("overload sheds    %d total %v\n", total, rep.Sheds)
	}
	fmt.Printf("virtual duration  %v\n", rep.VirtualDuration.Round(time.Second))

	if *sloReport && rep.SLO != nil {
		printSLOReport(rep.SLO)
	}
	if *sloJSON != "" && rep.SLO != nil {
		if err := slomon.Validate(rep.SLO); err != nil {
			log.Fatalf("slo snapshot failed validation: %v", err)
		}
		data, err := json.MarshalIndent(rep.SLO, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*sloJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slo snapshot      %s (schema v%d)\n", *sloJSON, rep.SLO.SchemaVersion)
	}

	if *fleetOn && rep.Fleet != nil {
		printFleetReport(rep.Fleet)
		if *fleetJSON != "" {
			data, err := json.MarshalIndent(rep.Fleet, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*fleetJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("fleet snapshot    %s (schema v%d)\n", *fleetJSON, rep.Fleet.SchemaVersion)
		}
		if *fleetCSV != "" {
			if err := os.WriteFile(*fleetCSV, []byte(rep.Fleet.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("fleet csv         %s\n", *fleetCSV)
		}
		if errs := rep.Fleet.Validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "fleet conservation violated: %s\n", e)
			}
			os.Exit(1)
		}
	}

	if rep.Market != nil {
		printMarketReport(rep.Market)
	}

	if *whyOn {
		printWhyReport(sys.Decisions())
	}
	if *whyJSON != "" {
		f, err := os.Create(*whyJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.WriteDecisions(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decision journal  %s (schema v%d, check with aegaeon-trace -mode why)\n",
			*whyJSON, decision.SchemaVersion)
	}

	if *kernelJSON != "" {
		if err := writeKernelMetrics(*kernelJSON, sys, &rep, wallElapsed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel metrics    %s\n", *kernelJSON)
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.WritePerfetto(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perfetto trace    %s (open at https://ui.perfetto.dev)\n", *perfetto)
	}
}
