package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"aegaeon"
	"aegaeon/internal/workload"
)

type marketBenchOpts struct {
	gpu                 string
	tp, prefill, decode int
	nModels             int
	rps                 float64
	horizon             time.Duration
	dataset             aegaeon.Dataset
	datasetName         string
	slo                 aegaeon.SLO
	seed                int64
	classes             string
	assert              bool
	out                 string
}

// marketArm is one arm's row of BENCH_market.json.
type marketArm struct {
	Arm             string  `json:"arm"` // reliable | spot_naive | spot_aware
	Requests        int     `json:"requests"`
	Completed       int     `json:"completed"`
	Attainment      float64 `json:"attainment"`
	GeneratedTokens int     `json:"generated_tokens"`
	MeanTTFTMS      float64 `json:"mean_ttft_ms"`

	Preemptions        int   `json:"preemptions"`
	Revocations        int   `json:"revocations"`
	EvacuatedKVBytes   int64 `json:"evacuated_kv_bytes"`
	LostKVBytes        int64 `json:"lost_kv_bytes"`
	RehomedPrefixBytes int64 `json:"rehomed_prefix_bytes"`

	CostDollars        float64 `json:"cost_dollars"`
	DollarsPer1KTokens float64 `json:"dollars_per_1k_tokens"`
	// Classes carries the per-class unit economics ($-per-1k-tokens by
	// device class) straight from the market snapshot.
	Classes []marketArmClass `json:"classes"`
}

type marketArmClass struct {
	Class              string  `json:"class"`
	Devices            int     `json:"devices"`
	CostDollars        float64 `json:"cost_dollars"`
	Tokens             uint64  `json:"tokens"`
	DollarsPer1KTokens float64 `json:"dollars_per_1k_tokens"`
	Preemptions        int     `json:"preemptions"`
}

// runMarketBench serves one byte-identical trace on three arms of the spot
// marketplace:
//
//   - reliable: a homogeneous on-demand pool — flat (expensive) rates, no
//     reclaims. The dependable baseline spot economics are measured against.
//   - spot_naive: heterogeneous spot devices with reclaim notices ignored —
//     everything GPU-resident at each revocation is lost to the crash path.
//   - spot_aware: the same devices, prices, and reclaim schedule, with
//     preemption-aware placement and KV evacuation ahead of each deadline.
//
// Reclaims land mid-run on decode instances (where KV accumulates), at the
// same virtual instants in both spot arms. With -market-assert the
// comparison becomes an assertion: spot_aware must lose at least 50% fewer
// KV bytes than spot_naive, must not regress attainment against spot_naive,
// and must not cost more per 1k tokens.
func runMarketBench(o marketBenchOpts) {
	if o.classes == "" {
		o.classes = "H800,A10"
	}
	// SmallModels fits every built-in class, including 24 GB devices, so the
	// heterogeneous arms never outgrow their smallest card.
	models := aegaeon.SmallModels(o.nModels)
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	// The trace is generated outside the systems from an independent seed so
	// all three arms serve the identical request sequence.
	rng := rand.New(rand.NewSource(o.seed + 100))
	trace := workload.PoissonTrace(rng, names, o.rps, o.horizon, o.dataset)

	// Reclaim schedule for the spot arms: two mid-run preemptions of decode
	// instances with a 5s grace each, identical across arms. Decode KV is
	// what evacuation protects, so that is where the notices land.
	d1 := 1 % o.decode
	d2 := (o.decode - 1) % o.decode
	faults := fmt.Sprintf("reclaim@%ds+5s:decode%d,reclaim@%ds+5s:decode%d",
		int(o.horizon.Seconds()*0.4), d1, int(o.horizon.Seconds()*0.7), d2)

	serve := func(arm, classes, faultSpec string, spot, naive bool) marketArm {
		sys, err := aegaeon.New(aegaeon.Config{
			GPU: o.gpu, TP: o.tp, PrefillGPUs: o.prefill, DecodeGPUs: o.decode,
			Models: models, SLO: o.slo, Seed: o.seed,
			Market: true, MarketClasses: classes,
			MarketSpot: spot, MarketNaive: naive,
			Faults: faultSpec,
		})
		if err != nil {
			log.Fatalf("%s arm: %v", arm, err)
		}
		rep, err := sys.Serve(trace)
		if err != nil {
			log.Fatalf("%s arm: %v", arm, err)
		}
		row := marketArm{
			Arm:             arm,
			Requests:        rep.Requests,
			Completed:       rep.Completed,
			Attainment:      rep.Attainment,
			GeneratedTokens: rep.GeneratedTokens,
			MeanTTFTMS:      float64(rep.MeanTTFT) / float64(time.Millisecond),
		}
		if m := rep.Market; m != nil {
			row.Preemptions = m.Stats.Preemptions
			row.Revocations = m.Stats.Revocations
			row.EvacuatedKVBytes = m.Stats.EvacuatedKVBytes
			row.LostKVBytes = m.Stats.LostKVBytes
			row.RehomedPrefixBytes = m.Stats.RehomedPrefixBytes
			for _, c := range m.Classes {
				row.Classes = append(row.Classes, marketArmClass{
					Class: c.Class, Devices: c.Devices,
					CostDollars: c.CostDollars, Tokens: c.Tokens,
					DollarsPer1KTokens: c.DollarsPer1KTokens,
					Preemptions:        c.Preemptions,
				})
			}
		}
		if rep.Fleet != nil {
			row.CostDollars = rep.Fleet.Fleet.CostDollars
			if rep.GeneratedTokens > 0 {
				row.DollarsPer1KTokens = row.CostDollars / float64(rep.GeneratedTokens) * 1000
			}
		}
		fmt.Printf("%-10s  %5d req  attainment %6.2f%%  lost %8.1fMB  evac %8.1fMB  $%.4f  $%.4f/1k\n",
			arm, row.Requests, 100*row.Attainment,
			float64(row.LostKVBytes)/(1<<20), float64(row.EvacuatedKVBytes)/(1<<20),
			row.CostDollars, row.DollarsPer1KTokens)
		return row
	}

	fmt.Printf("market bench      %d models on %d+%d (classes %s), %.2f req/s/model, %v horizon\n",
		o.nModels, o.prefill, o.decode, o.classes, o.rps, o.horizon)
	fmt.Printf("reclaim schedule  %s\n", faults)
	reliable := serve("reliable", "H800", "", false, false)
	naive := serve("spot_naive", o.classes, faults, true, true)
	aware := serve("spot_aware", o.classes, faults, true, false)

	result := map[string]any{
		"bench":        "market",
		"gpu":          o.gpu,
		"models":       o.nModels,
		"prefill_gpus": o.prefill,
		"decode_gpus":  o.decode,
		"classes":      o.classes,
		"rps":          o.rps,
		"horizon_s":    o.horizon.Seconds(),
		"dataset":      o.datasetName,
		"seed":         o.seed,
		"reclaims":     faults,
		"arms": map[string]marketArm{
			"reliable":   reliable,
			"spot_naive": naive,
			"spot_aware": aware,
		},
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench json        %s\n", o.out)

	if !o.assert {
		return
	}
	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Printf("FAIL: "+format+"\n", args...)
		}
	}
	check(naive.Preemptions == 2 && aware.Preemptions == 2,
		"both spot arms must see 2 preemptions (naive %d, aware %d)",
		naive.Preemptions, aware.Preemptions)
	check(naive.LostKVBytes > 0,
		"spot_naive lost no KV — reclaims landed on idle instances, bench proves nothing")
	check(aware.EvacuatedKVBytes > 0,
		"spot_aware evacuated no KV ahead of its deadlines")
	check(aware.LostKVBytes*2 <= naive.LostKVBytes,
		"spot_aware lost %d KV bytes, more than half of spot_naive's %d",
		aware.LostKVBytes, naive.LostKVBytes)
	check(aware.Attainment >= naive.Attainment,
		"spot_aware attainment %.2f%% regressed below spot_naive %.2f%%",
		100*aware.Attainment, 100*naive.Attainment)
	check(aware.DollarsPer1KTokens <= naive.DollarsPer1KTokens,
		"spot_aware $%.4f/1k costs more than spot_naive $%.4f/1k",
		aware.DollarsPer1KTokens, naive.DollarsPer1KTokens)
	check(len(aware.Classes) > 0 && len(naive.Classes) > 0,
		"per-class economics missing from the spot arms")
	for _, c := range aware.Classes {
		check(c.DollarsPer1KTokens > 0,
			"spot_aware class %s has no $-per-1k-tokens (tokens %d, cost $%.4f)",
			c.Class, c.Tokens, c.CostDollars)
	}
	check(reliable.Preemptions == 0 && reliable.LostKVBytes == 0,
		"reliable arm saw preemptions")
	if failed {
		os.Exit(1)
	}
	fmt.Printf("PASS: spot_aware lost %.1fMB vs spot_naive %.1fMB (>=50%% fewer), attainment %.2f%% >= %.2f%%, $%.4f/1k <= $%.4f/1k\n",
		float64(aware.LostKVBytes)/(1<<20), float64(naive.LostKVBytes)/(1<<20),
		100*aware.Attainment, 100*naive.Attainment,
		aware.DollarsPer1KTokens, naive.DollarsPer1KTokens)
}
