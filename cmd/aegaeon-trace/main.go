// Command aegaeon-trace generates and characterizes market workload traces:
// the Fig. 1(a) popularity CDF, the Fig. 1(b) burst timeline, and summary
// statistics of synthesized Poisson traces, optionally emitting the trace
// as CSV for external tools. It also validates Perfetto execution traces
// exported by aegaeon-sim (-mode validate -perfetto trace.json), SLO
// monitor snapshots (-mode validate-slo -slo BENCH_slo.json), and decision
// journals (-mode why -why journal.json [-request id]), pretty-printing the
// why-trace after the structural gate passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"aegaeon/internal/decision"
	"aegaeon/internal/obs"
	"aegaeon/internal/slomon"
	"aegaeon/internal/theory"
	"aegaeon/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "market", "market, burst, poisson, validate, validate-slo, why")
		nModels  = flag.Int("models", 779, "number of models")
		zipfS    = flag.Float64("zipf", 2.0, "Zipf exponent for market popularity")
		rps      = flag.Float64("rps", 0.1, "per-model rate for poisson mode")
		horizon  = flag.Duration("horizon", 10*time.Minute, "trace length")
		seed     = flag.Int64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit the trace as CSV on stdout")
		perfetto = flag.String("perfetto", "", "Perfetto JSON to check in validate mode")
		sloFile  = flag.String("slo", "", "SLO snapshot JSON to check in validate-slo mode")
		whyFile  = flag.String("why", "", "decision journal JSON to check and print in why mode")
		request  = flag.String("request", "", "print one request's full decision chain in why mode (default: summary + chain digests)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	switch *mode {
	case "market":
		w := workload.ZipfWeights(*nModels, *zipfS)
		cdf := workload.MarketCDF(w)
		fmt.Printf("marketplace popularity, %d models, Zipf s=%.2f\n", *nModels, *zipfS)
		fmt.Printf("%-12s %s\n", "top models", "request share")
		for _, f := range []float64{0.01, 0.02, 0.059, 0.10, 0.25, 0.50, 1.0} {
			fmt.Printf("%-12s %.2f%%\n", fmt.Sprintf("%.1f%%", 100*f), 100*cdf(f))
		}
		fmt.Printf("\ntail %.1f%% of models receive %.2f%% of requests (paper: 94.1%% -> 1.35%%)\n",
			94.1, 100*(1-cdf(1-0.941)))
		em := theory.ExpectedActiveModels(100, 0.037, 16790*time.Millisecond)
		fmt.Printf("Theorem 3.1 reference point: E[m] = %.2f for M=100, λ=0.037, T=16.79s\n", em)

	case "burst":
		trace, rates := workload.BurstTrace(rng, "hot", 620, 860,
			90*time.Second, 25*time.Second, *horizon, workload.ShareGPT())
		var peak, sum, over float64
		for _, r := range rates {
			sum += r
			if r > peak {
				peak = r
			}
			if r > 700 {
				over++
			}
		}
		fmt.Printf("burst trace: %d requests over %v\n", len(trace), *horizon)
		fmt.Printf("mean %.0f req/s, peak %.0f req/s, %.1f%% of seconds above a 700 req/s reservation\n",
			sum/float64(len(rates)), peak, 100*over/float64(len(rates)))
		if *csv {
			fmt.Println("second,rate")
			for i, r := range rates {
				fmt.Printf("%d,%.0f\n", i, r)
			}
		}

	case "poisson":
		names := make([]string, *nModels)
		for i := range names {
			names[i] = fmt.Sprintf("model-%03d", i)
		}
		trace := workload.PoissonTrace(rng, names, *rps, *horizon, workload.ShareGPT())
		st := workload.Summarize(trace)
		fmt.Printf("poisson trace: %d requests, %d models, %.2f req/s total\n",
			st.Requests, st.Models, st.TotalRate)
		fmt.Printf("mean input %.0f tokens, mean output %.0f tokens\n", st.MeanIn, st.MeanOut)
		if *csv {
			fmt.Println("id,model,arrival_s,input_tokens,output_tokens")
			for _, r := range trace {
				fmt.Printf("%s,%s,%.3f,%d,%d\n", r.ID, r.Model, r.Arrival.Seconds(), r.InputTokens, r.OutputTokens)
			}
		}

	case "validate":
		if *perfetto == "" {
			fmt.Fprintln(os.Stderr, "validate mode needs -perfetto trace.json")
			os.Exit(2)
		}
		f, err := os.Open(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := obs.ValidatePerfetto(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid: %v\n", *perfetto, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace-event JSON\n", *perfetto)

	case "validate-slo":
		if *sloFile == "" {
			fmt.Fprintln(os.Stderr, "validate-slo mode needs -slo snapshot.json")
			os.Exit(2)
		}
		data, err := os.ReadFile(*sloFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var snap slomon.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "%s: not a JSON SLO snapshot: %v\n", *sloFile, err)
			os.Exit(1)
		}
		if err := slomon.Validate(&snap); err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid: %v\n", *sloFile, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid SLO snapshot (schema v%d, %d models, fleet alert %s)\n",
			*sloFile, snap.SchemaVersion, len(snap.Models), snap.Fleet.Alert.State)

	case "why":
		if *whyFile == "" {
			fmt.Fprintln(os.Stderr, "why mode needs -why journal.json")
			os.Exit(2)
		}
		data, err := os.ReadFile(*whyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var exp decision.Export
		if err := json.Unmarshal(data, &exp); err != nil {
			fmt.Fprintf(os.Stderr, "%s: not a JSON decision journal: %v\n", *whyFile, err)
			os.Exit(1)
		}
		if err := decision.Validate(&exp); err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid: %v\n", *whyFile, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid decision journal (schema v%d, %d decisions, %d retained, %d chains)\n",
			*whyFile, exp.SchemaVersion, exp.Total, len(exp.Records), len(exp.Chains))
		if *request != "" {
			for _, c := range exp.Chains {
				if c.Request == *request {
					printWhyChain(c)
					return
				}
			}
			fmt.Fprintf(os.Stderr, "%s: no chain for request %q\n", *whyFile, *request)
			os.Exit(1)
		}
		printWhySummary(&exp)

	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// printWhySummary renders the journal at a glance: decision counts by kind
// and outcome, then a one-line digest per retained chain (its kind sequence
// and terminal outcome) so a failing request is findable without jq.
func printWhySummary(exp *decision.Export) {
	type ko struct{ kind, outcome string }
	counts := map[ko]int{}
	var order []ko
	for _, r := range exp.Records {
		k := ko{r.Kind, r.Outcome}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].kind != order[j].kind {
			return order[i].kind < order[j].kind
		}
		return order[i].outcome < order[j].outcome
	})
	for _, k := range order {
		fmt.Printf("decision %-20s %-22s %d\n", k.kind, k.outcome, counts[k])
	}
	for _, c := range exp.Chains {
		var kinds []string
		for _, r := range c.Records {
			kinds = append(kinds, r.Kind)
		}
		last := c.Records[len(c.Records)-1]
		fmt.Printf("chain %-12s %-8s %s\n", c.Request, last.Outcome, strings.Join(kinds, " -> "))
	}
}

// printWhyChain renders one request's full decision chain: every record with
// its virtual timestamp, outcome, reason, evidence inputs, and — where the
// decision weighed alternatives — the candidate set with per-term score
// decompositions, the chosen one marked.
func printWhyChain(c decision.ChainExport) {
	fmt.Printf("why %s (%d decisions):\n", c.Request, len(c.Records))
	for _, r := range c.Records {
		fmt.Printf("  [%12s] %-18s %-22s", time.Duration(r.At), r.Kind, r.Outcome)
		if r.Instance != "" {
			fmt.Printf(" @%s", r.Instance)
		}
		if r.Reason != "" {
			fmt.Printf("  (%s)", r.Reason)
		}
		fmt.Println()
		for _, t := range r.Inputs {
			fmt.Printf("      input %-28s %g\n", t.Name, t.Value)
		}
		for _, cd := range r.Candidates {
			mark := " "
			if cd.Chosen {
				mark = "*"
			}
			if cd.Excluded {
				mark = "x"
			}
			fmt.Printf("    %s cand %-20s score %g\n", mark, cd.Name, cd.Score)
			for _, t := range cd.Terms {
				fmt.Printf("          term %-24s %g\n", t.Name, t.Value)
			}
		}
	}
}
