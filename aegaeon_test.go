package aegaeon

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 4})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests {
		t.Fatalf("completed %d/%d", rep.Completed, rep.Requests)
	}
	if rep.Attainment < 0.9 {
		t.Fatalf("attainment = %.3f", rep.Attainment)
	}
	if rep.Switches == 0 {
		t.Fatal("no auto-scaling happened with 4 models on 2 decode GPUs")
	}
}

func TestSystemIsSingleUse(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 1, NumModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.05, Horizon: 30 * time.Second})
	if _, err := sys.Serve(trace); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Serve(trace); err == nil {
		t.Fatal("second Serve accepted")
	}
}

func TestUnknownGPURejected(t *testing.T) {
	if _, err := New(Config{GPU: "V100"}); err == nil {
		t.Fatal("unknown GPU accepted")
	}
}

func TestBaselineComparison(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	for _, b := range []Baseline{ServerlessLLM, ServerlessLLMPlus, MuxServe} {
		rep, err := sys.ServeBaseline(b, trace)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if rep.Attainment < 0 || rep.Attainment > 1 {
			t.Fatalf("%s attainment = %.3f", b, rep.Attainment)
		}
	}
	if _, err := sys.ServeBaseline("vLLM", trace); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	// The headline direction: Aegaeon >= MuxServe on 6 models / 3 GPUs
	// (MuxServe cannot place them all).
	aeg, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	mux, _ := sys.ServeBaseline(MuxServe, trace)
	if aeg.Attainment < mux.Attainment {
		t.Fatalf("Aegaeon %.3f < MuxServe %.3f on an over-committed pool",
			aeg.Attainment, mux.Attainment)
	}
}

func TestCustomModelsAndSLO(t *testing.T) {
	models := MarketModels(2)
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 1,
		Models: models,
		SLO:    DefaultSLO().Scale(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Models()) != 2 {
		t.Fatalf("models = %d", len(sys.Models()))
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.05, Horizon: time.Minute, Dataset: ShareGPTOx2()})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests {
		t.Fatalf("completed %d/%d", rep.Completed, rep.Requests)
	}
}

func TestCatalogExposed(t *testing.T) {
	if len(Catalog()) < 8 {
		t.Fatalf("catalog has %d models", len(Catalog()))
	}
}

func TestFaultSpecServe(t *testing.T) {
	sys, err := New(Config{
		PrefillGPUs: 1, DecodeGPUs: 2, NumModels: 4,
		Faults: "crash@40s:decode0,fetchslow@60s+20s*4",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.1, Horizon: 2 * time.Minute})
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected != 2 {
		t.Fatalf("injected %d faults, want 2", rep.FaultsInjected)
	}
	if rep.Faults.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Faults.Crashes)
	}
	// One decode survivor remains: the crash recovers, nothing is lost.
	if rep.Completed+rep.Failed != rep.Requests {
		t.Fatalf("completed %d + failed %d != %d requests", rep.Completed, rep.Failed, rep.Requests)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed %d requests despite a surviving decode instance", rep.Failed)
	}
}

func TestBadFaultSpecRejected(t *testing.T) {
	if _, err := New(Config{Faults: "explode@now"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

func TestStoreFaultNeedsCluster(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 1, NumModels: 1, Faults: "partition@10s+5s"})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{RatePerModel: 0.05, Horizon: 30 * time.Second})
	if _, err := sys.Serve(trace); err == nil {
		t.Fatal("partition fault injected with no metadata store to partition")
	}
}

func TestPrefixCacheFlow(t *testing.T) {
	sys, err := New(Config{PrefillGPUs: 2, DecodeGPUs: 2, NumModels: 2, PrefixRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	trace := sys.GenerateTrace(TraceSpec{
		RatePerModel: 0.03, Horizon: 3 * time.Minute, Workload: MultiTurn,
	})
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	sawSession := false
	for _, r := range trace {
		if r.SessionID != "" && r.Turn > 0 {
			sawSession = true
		}
	}
	if !sawSession {
		t.Fatal("multi-turn trace drew no later turns")
	}
	rep, err := sys.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prefix == nil {
		t.Fatal("prefix-enabled run reported no prefix stats")
	}
	if rep.Prefix.Hits == 0 || rep.Prefix.TokensSaved == 0 {
		t.Fatalf("multi-turn trace never hit the cache: %+v", rep.Prefix)
	}
	if rep.Prefix.PinnedEntries != 0 {
		t.Fatalf("%d entries pinned after drain", rep.Prefix.PinnedEntries)
	}

	// Without the flag the report stays clean.
	plain, err := New(Config{PrefillGPUs: 1, DecodeGPUs: 1, NumModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := plain.Serve(plain.GenerateTrace(TraceSpec{RatePerModel: 0.05, Horizon: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Prefix != nil {
		t.Fatal("prefix stats reported with the cache disabled")
	}
}
